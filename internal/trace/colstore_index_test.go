package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"sentomist/internal/randx"
	"sentomist/internal/stats"
)

// TestColWriterIndex checks the writer-side block index against the encoded
// stream: offsets and lengths tile the byte range exactly, sample ordinals
// accumulate, and the per-dimension statistics match a brute-force pass
// over the appended counters.
func TestColWriterIndex(t *testing.T) {
	rng := randx.New(19)
	var buf bytes.Buffer
	w, err := NewColWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][]stats.Sparse
	for b := 0; b < 7; b++ {
		meta, cnt := randomBlock(rng, 1+rng.Intn(30), 64+rng.Intn(100), 4)
		if err := w.Append(meta, cnt); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, cnt)
	}
	if err := w.Append(nil, nil); err != nil { // must not add an index entry
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	idx := w.Index()
	if len(idx) != len(blocks) {
		t.Fatalf("index has %d entries for %d blocks", len(idx), len(blocks))
	}
	off, start := int64(len(colMagic)), 0
	for b, st := range idx {
		if st.Offset != off {
			t.Fatalf("block %d offset %d, want %d", b, st.Offset, off)
		}
		if st.Start != start {
			t.Fatalf("block %d start %d, want %d", b, st.Start, start)
		}
		if st.Samples != len(blocks[b]) {
			t.Fatalf("block %d records %d samples, appended %d", b, st.Samples, len(blocks[b]))
		}
		if st.Length <= 0 {
			t.Fatalf("block %d has non-positive length %d", b, st.Length)
		}
		off += st.Length
		start += st.Samples

		want := bruteDims(blocks[b])
		if !reflect.DeepEqual(st.Dims, want) {
			t.Fatalf("block %d dim stats diverge:\n got %v\nwant %v", b, st.Dims, want)
		}
	}
	if off != int64(buf.Len()) {
		t.Fatalf("index covers %d bytes, stream has %d", off, buf.Len())
	}
	if w.Offset() != int64(buf.Len()) || w.Samples() != start {
		t.Fatalf("writer reports offset=%d samples=%d, want %d/%d", w.Offset(), w.Samples(), buf.Len(), start)
	}
}

// bruteDims recomputes a block's per-dimension statistics the slow way.
func bruteDims(counters []stats.Sparse) []ColDimStat {
	byDim := map[int32]*ColDimStat{}
	var order []int32
	for _, c := range counters {
		for k, d := range c.Idx {
			v := c.Val[k]
			s, ok := byDim[d]
			if !ok {
				byDim[d] = &ColDimStat{Dim: d, Min: v, Max: v, Count: 1}
				order = append(order, d)
				continue
			}
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			s.Count++
		}
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if order[j] < order[i] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var out []ColDimStat
	for _, d := range order {
		out = append(out, *byDim[d])
	}
	return out
}

// TestReadColBlockAt decodes each indexed block at its recorded offset and
// checks it is bit-identical to the sequential reader's view, in any order.
func TestReadColBlockAt(t *testing.T) {
	rng := randx.New(23)
	var buf bytes.Buffer
	w, err := NewColWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 6; b++ {
		meta, cnt := randomBlock(rng, 1+rng.Intn(25), 80, 2)
		if err := w.Append(meta, cnt); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := bytes.NewReader(buf.Bytes())
	r, err := NewColReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var seqMeta [][][]int64
	var seqCnt [][]stats.Sparse
	for {
		m, c, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seqMeta = append(seqMeta, m)
		seqCnt = append(seqCnt, c)
	}
	idx := w.Index()
	if len(idx) != len(seqCnt) {
		t.Fatalf("index has %d entries, sequential read saw %d blocks", len(idx), len(seqCnt))
	}
	// Visit blocks back to front to prove random access.
	for b := len(idx) - 1; b >= 0; b-- {
		m, c, err := ReadColBlockAt(data, idx[b].Offset)
		if err != nil {
			t.Fatalf("block %d at offset %d: %v", b, idx[b].Offset, err)
		}
		if !reflect.DeepEqual(m, seqMeta[b]) {
			t.Fatalf("block %d meta diverges from sequential read", b)
		}
		if len(c) != len(seqCnt[b]) {
			t.Fatalf("block %d has %d counters, want %d", b, len(c), len(seqCnt[b]))
		}
		for i := range c {
			want := seqCnt[b][i]
			if c[i].Dim != want.Dim || !reflect.DeepEqual(c[i].Idx, want.Idx) {
				t.Fatalf("block %d counter %d shape diverges", b, i)
			}
			for k := range want.Val {
				if math.Float64bits(c[i].Val[k]) != math.Float64bits(want.Val[k]) {
					t.Fatalf("block %d counter %d value %d not bit-identical", b, i, k)
				}
			}
		}
	}
	// Offsets that do not start a block must error, not panic or misread.
	if _, _, err := ReadColBlockAt(data, 0); err == nil {
		t.Fatal("offset inside the magic accepted")
	}
	if _, _, err := ReadColBlockAt(data, int64(buf.Len())); err == nil {
		t.Fatal("offset at EOF accepted")
	}
	if _, _, err := ReadColBlockAt(data, int64(buf.Len())+100); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}
