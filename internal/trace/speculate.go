package trace

// Speculative recording support. The optimistic scheduler (internal/sim)
// lets a node run past the point where its inputs are certain; everything
// the node records after a Checkpoint must be discardable. Two mechanisms
// cover the recorder's outputs:
//
//   - Materialized markers, truth entries, delta arenas, and the dense
//     counter roll back in place via Checkpoint/Rollback — appends never
//     mutate earlier entries (a full arena is replaced, not grown), so
//     truncating restores the exact pre-checkpoint state.
//
//   - A StreamSink cannot un-observe a marker, so while speculation is
//     active (BeginSpeculation) sink calls are buffered instead of
//     delivered. Rollback drops the buffered tail; CommitSpeculation
//     replays the surviving buffer into the sink in order. The sink
//     therefore observes exactly the committed marker sequence, byte- and
//     order-identical to a sequential run.

// specMark is one deferred StreamSink.OnMark call. The touched PCs and
// their counts are flattened into the recorder's spec buffers; off/n locate
// this mark's span.
type specMark struct {
	kind     Kind
	arg      int
	cycle    uint64
	instance int
	off, n   int
}

// RecorderCheckpoint captures a rollback point of one recorder. The zero
// value is ready to use; reusing a checkpoint across sections recycles its
// internal buffers.
type RecorderCheckpoint struct {
	markers, truth, arenas int
	arena                  []Delta
	touched                []uint16
	counts                 []uint32
	minSP                  uint16
	specMarks, specPCs     int
}

// Checkpoint records the recorder's current state into cp so Rollback can
// return to it. Call only between markers of a consistent state (the
// scheduler checkpoints at section boundaries).
func (r *Recorder) Checkpoint(cp *RecorderCheckpoint) {
	cp.markers = len(r.nt.Markers)
	cp.truth = len(r.nt.TruthInstance)
	cp.arenas = len(r.nt.arenas)
	cp.arena = r.arena
	cp.touched = append(cp.touched[:0], r.d.Touched...)
	cp.counts = cp.counts[:0]
	for _, pc := range cp.touched {
		cp.counts = append(cp.counts, r.d.Counts[pc])
	}
	cp.minSP = r.minSP
	cp.specMarks = len(r.specMarks)
	cp.specPCs = len(r.specPCs)
}

// Rollback discards everything recorded since Checkpoint filled cp:
// markers, truth entries, arena space, buffered sink marks, and the dense
// counter's accumulation. The recorder continues recording from the
// checkpointed state.
func (r *Recorder) Rollback(cp *RecorderCheckpoint) {
	ms := r.nt.Markers
	for i := cp.markers; i < len(ms); i++ {
		ms[i] = Marker{}
	}
	r.nt.Markers = ms[:cp.markers]
	if r.nt.TruthInstance != nil {
		r.nt.TruthInstance = r.nt.TruthInstance[:cp.truth]
	}
	tail := r.nt.arenas[cp.arenas:]
	for i := range tail {
		putArena(tail[i])
		tail[i] = nil
	}
	r.nt.arenas = r.nt.arenas[:cp.arenas]
	r.arena = cp.arena
	for _, pc := range r.d.Touched {
		r.d.Counts[pc] = 0
	}
	r.d.Touched = append(r.d.Touched[:0], cp.touched...)
	for i, pc := range cp.touched {
		r.d.Counts[pc] = cp.counts[i]
	}
	r.minSP = cp.minSP
	r.specMarks = r.specMarks[:cp.specMarks]
	r.specPCs = r.specPCs[:cp.specPCs]
	r.specCounts = r.specCounts[:cp.specPCs]
}

// BeginSpeculation defers StreamSink delivery: subsequent Mark calls buffer
// their sink observation instead of calling OnMark. Material recording
// (markers, deltas) is unaffected — it rolls back via Rollback. No-op
// without a sink.
func (r *Recorder) BeginSpeculation() { r.spec = true }

// CommitSpeculation replays every buffered sink mark into the sink, in
// recording order, and leaves speculation mode. The dense scratch handed to
// the sink is reconstructed per mark, honoring the OnMark contract (full
// dense counts, nonzero exactly at the touched PCs).
func (r *Recorder) CommitSpeculation() {
	r.spec = false
	if r.sink == nil || len(r.specMarks) == 0 {
		r.specMarks = r.specMarks[:0]
		r.specPCs = r.specPCs[:0]
		r.specCounts = r.specCounts[:0]
		return
	}
	scratch := getDense(r.nt.ProgramLen)
	for _, sm := range r.specMarks {
		touched := r.specPCs[sm.off : sm.off+sm.n]
		counts := r.specCounts[sm.off : sm.off+sm.n]
		for i, pc := range touched {
			scratch.counts[pc] = counts[i]
		}
		r.sink.OnMark(sm.kind, sm.arg, sm.cycle, sm.instance, touched, scratch.counts)
		for _, pc := range touched {
			scratch.counts[pc] = 0
		}
	}
	r.specMarks = r.specMarks[:0]
	r.specPCs = r.specPCs[:0]
	r.specCounts = r.specCounts[:0]
	scratch.touched = scratch.touched[:0]
	densePool.Put(scratch)
}

// bufferMark captures a sink observation for later replay; called by Mark
// while speculation is active.
func (r *Recorder) bufferMark(kind Kind, arg int, cycle uint64, instance int) {
	off := len(r.specPCs)
	r.specPCs = append(r.specPCs, r.d.Touched...)
	for _, pc := range r.d.Touched {
		r.specCounts = append(r.specCounts, r.d.Counts[pc])
	}
	r.specMarks = append(r.specMarks, specMark{
		kind: kind, arg: arg, cycle: cycle, instance: instance,
		off: off, n: len(r.d.Touched),
	})
}
