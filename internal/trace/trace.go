// Package trace models the runtime trace Sentomist mines: the lifecycle
// sequence of Section V-A plus the per-marker instruction-count deltas that
// make interval instruction counters (Definition 4) exact.
//
// A Trace holds, per node, an ordered series of Markers. Four marker kinds
// are the paper-visible lifecycle items — PostTask, RunTask, Int, Reti — and
// one, TaskEnd, is additional instrumentation emitted when a runTask call
// returns (observable in the paper's Avrora monitor as well). The interval
// identification algorithm consumes only the four paper kinds; TaskEnd is
// used solely to place exact wall-clock window boundaries for counting.
//
// Every marker carries a sparse delta: how many times each program counter
// executed since the previous marker of the same node. Summing deltas over a
// marker window therefore yields exactly the instructions executed in that
// window, including instructions contributed by other interleaved event
// procedure instances — the overlap the paper exploits.
package trace

import (
	"fmt"
	"sync"
)

// Kind enumerates marker kinds.
type Kind uint8

// Marker kinds. PostTask..Reti are the four lifecycle items of the paper;
// TaskEnd is instrumentation for exact interval windows.
const (
	PostTask Kind = iota + 1
	RunTask
	Int
	Reti
	TaskEnd
)

// String returns the paper's name for the marker kind.
func (k Kind) String() string {
	switch k {
	case PostTask:
		return "postTask"
	case RunTask:
		return "runTask"
	case Int:
		return "int"
	case Reti:
		return "reti"
	case TaskEnd:
		return "taskEnd"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Delta records that instruction PC executed Count times since the previous
// marker.
type Delta struct {
	PC    uint16
	Count uint32
}

// Marker is one entry of a node's lifecycle sequence.
type Marker struct {
	Kind Kind
	// Arg is the IRQ number for Int markers and the task ID for
	// PostTask, RunTask, and TaskEnd markers. It is 0 for Reti.
	Arg int
	// Cycle is the node-local cycle time of the event. For Int it is the
	// handler entry; for Reti the handler exit; for RunTask the task
	// start; for TaskEnd the task return; for PostTask the post call.
	Cycle uint64
	// Deltas lists instruction executions since the previous marker.
	Deltas []Delta
	// MinSP is the lowest stack-pointer value observed since the
	// previous marker (the stack grows downward, so lower = deeper).
	// It feeds the memory-usage attribute of the paper's Section V-B.
	MinSP uint16
}

// String renders the marker the way the paper writes lifecycle items.
func (m Marker) String() string {
	switch m.Kind {
	case Int:
		return fmt.Sprintf("int(%d)@%d", m.Arg, m.Cycle)
	case Reti:
		return fmt.Sprintf("reti@%d", m.Cycle)
	case PostTask:
		return fmt.Sprintf("postTask(%d)@%d", m.Arg, m.Cycle)
	case RunTask:
		return fmt.Sprintf("runTask(%d)@%d", m.Arg, m.Cycle)
	case TaskEnd:
		return fmt.Sprintf("taskEnd(%d)@%d", m.Arg, m.Cycle)
	}
	return fmt.Sprintf("marker(%d)@%d", uint8(m.Kind), m.Cycle)
}

// NodeTrace is the recorded execution history of one node.
type NodeTrace struct {
	NodeID int
	// ProgramLen is the number of instructions in the node's binary;
	// instruction counters over this trace have ProgramLen dimensions.
	ProgramLen int
	Markers    []Marker
	// TruthInstance, when recorded, maps marker index to the runtime's
	// ground-truth event-procedure instance ID that caused the marker
	// (-1 when not applicable). It exists so tests can verify that the
	// paper's black-box interval identification matches reality; the
	// analyzer itself never reads it.
	TruthInstance []int

	// arenas holds the delta-arena chunks the markers' Deltas alias, so
	// Release can return them to the pool in one sweep.
	arenas [][]Delta
}

// Trace is a whole test run: one NodeTrace per node.
type Trace struct {
	// Seed is the RNG seed the run was generated with.
	Seed uint64
	// Cycles is the simulated run length in cycles.
	Cycles uint64
	Nodes  []*NodeTrace
}

// Node returns the trace of the node with the given ID, or nil.
func (t *Trace) Node(id int) *NodeTrace {
	for _, n := range t.Nodes {
		if n.NodeID == id {
			return n
		}
	}
	return nil
}

// Validate performs structural checks: non-decreasing cycles, known kinds,
// PCs within the program, and ground-truth length agreement.
func (t *Trace) Validate() error {
	for _, n := range t.Nodes {
		if n == nil {
			return fmt.Errorf("trace: nil node trace")
		}
		if n.TruthInstance != nil && len(n.TruthInstance) != len(n.Markers) {
			return fmt.Errorf("trace: node %d: %d truth entries for %d markers",
				n.NodeID, len(n.TruthInstance), len(n.Markers))
		}
		var prev uint64
		for i, m := range n.Markers {
			if m.Kind < PostTask || m.Kind > TaskEnd {
				return fmt.Errorf("trace: node %d marker %d: bad kind %d", n.NodeID, i, m.Kind)
			}
			if m.Cycle < prev {
				return fmt.Errorf("trace: node %d marker %d: cycle %d before %d",
					n.NodeID, i, m.Cycle, prev)
			}
			prev = m.Cycle
			for _, d := range m.Deltas {
				if int(d.PC) >= n.ProgramLen {
					return fmt.Errorf("trace: node %d marker %d: pc %d outside program of %d",
						n.NodeID, i, d.PC, n.ProgramLen)
				}
				if d.Count == 0 {
					return fmt.Errorf("trace: node %d marker %d: zero-count delta", n.NodeID, i)
				}
			}
		}
	}
	return nil
}

// SizeBytes estimates the serialized footprint of the trace: the number the
// paper contrasts with "tens of megabytes" of raw function-level logs.
func (t *Trace) SizeBytes() int {
	const markerHeader = 1 + 2 + 8 // kind + arg + cycle
	const deltaSize = 2 + 4
	size := 16
	for _, n := range t.Nodes {
		size += 8
		for _, m := range n.Markers {
			size += markerHeader + deltaSize*len(m.Deltas)
		}
	}
	return size
}

// StreamSink consumes lifecycle markers as the recorder emits them — the
// hook the streaming featuring path hangs off. OnMark is called once per
// marker, before the recorder snapshots (or discards) the accumulated
// delta: touched lists the PCs executed since the previous marker in
// first-touch order, and counts is the recorder's full dense counter
// (len == ProgramLen), nonzero exactly at the touched PCs. Both slices are
// the recorder's scratch — valid only for the duration of the call.
// instance is the ground-truth event-procedure instance ID, or -1 when the
// recorder does not record truth.
type StreamSink interface {
	OnMark(kind Kind, arg int, cycle uint64, instance int, touched []uint16, counts []uint32)
}

// Storage pools. Recorders draw their dense counter scratch, marker
// storage, and delta arenas from these, and Recorder.Release /
// NodeTrace.Release return them, so campaign-style workloads that run many
// simulations recycle the big per-run allocations instead of re-growing
// them. Pool invariant: a released dense buffer is all-zero over its full
// capacity (Release zeroes the touched entries; make zeroes fresh ones),
// so acquisition never rescans.
var (
	densePool  sync.Pool // *denseBuf
	markerPool sync.Pool // *[]Marker
	truthPool  sync.Pool // *[]int
	arenaPool  sync.Pool // *[]Delta, cap == arenaChunk
)

const arenaChunk = 4096

type denseBuf struct {
	counts  []uint32
	touched []uint16
}

func getDense(programLen int) *denseBuf {
	if b, _ := densePool.Get().(*denseBuf); b != nil && cap(b.counts) >= programLen {
		b.counts = b.counts[:programLen]
		b.touched = b.touched[:0]
		return b
	}
	return &denseBuf{counts: make([]uint32, programLen)}
}

func getMarkerSlice() []Marker {
	if p, _ := markerPool.Get().(*[]Marker); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putMarkerSlice(ms []Marker) {
	if cap(ms) == 0 {
		return
	}
	ms = ms[:cap(ms)]
	clear(ms) // drop the Delta references so the pool retains no arenas
	ms = ms[:0]
	markerPool.Put(&ms)
}

func getTruthSlice() []int {
	if p, _ := truthPool.Get().(*[]int); p != nil {
		return (*p)[:0]
	}
	return nil
}

func putTruthSlice(ts []int) {
	if cap(ts) == 0 {
		return
	}
	ts = ts[:0]
	truthPool.Put(&ts)
}

func getArena(n int) []Delta {
	if n <= arenaChunk {
		if p, _ := arenaPool.Get().(*[]Delta); p != nil {
			return (*p)[:0]
		}
		return make([]Delta, 0, arenaChunk)
	}
	return make([]Delta, 0, n)
}

func putArena(a []Delta) {
	if cap(a) != arenaChunk {
		return
	}
	a = a[:0]
	arenaPool.Put(&a)
}

// Release returns the node trace's marker, truth, and delta-arena storage
// to the package pools. Every view into the trace — Markers, their Deltas,
// intervals featured from them — is invalid afterwards; call it only when
// the trace is fully consumed. Safe to call more than once.
func (n *NodeTrace) Release() {
	for _, a := range n.arenas {
		putArena(a)
	}
	n.arenas = nil
	if n.Markers != nil {
		putMarkerSlice(n.Markers)
		n.Markers = nil
	}
	if n.TruthInstance != nil {
		putTruthSlice(n.TruthInstance)
		n.TruthInstance = nil
	}
}

// Release recycles the storage of every node trace; see NodeTrace.Release
// for the invalidation contract.
func (t *Trace) Release() {
	for _, n := range t.Nodes {
		n.Release()
	}
}

// Dense is a recorder's dense per-PC counter state. The MCU's block
// executor increments Counts and appends to Touched in place (via
// Recorder.Dense), skipping any per-instruction call overhead; Touched
// keeps PCs with nonzero counts in first-touch order, which fixes the
// delta order of the next marker.
type Dense struct {
	Counts  []uint32
	Touched []uint16
}

// Count records one execution of pc.
func (d *Dense) Count(pc uint16) {
	if d.Counts[pc] == 0 {
		d.Touched = append(d.Touched, pc)
	}
	d.Counts[pc]++
}

// Recorder accumulates one node's trace during emulation. It owns a dense
// per-PC counter that the MCU increments; Mark snapshots and resets it as a
// sparse delta.
type Recorder struct {
	nt    *NodeTrace
	d     Dense
	buf   *denseBuf
	truth bool
	minSP uint16
	// arena is the backing store markers' Deltas are carved from, so Mark
	// amortizes one large allocation over many markers instead of
	// allocating a fresh slice per marker.
	arena []Delta
	// sink, when set, observes every marker before it is materialized.
	sink StreamSink
	// discard drops markers instead of materializing them: the recorder
	// keeps its dense counter cycle (and feeds the sink) but the trace
	// stays empty — the memory-light mode of the streaming pipeline.
	discard bool
	// spec defers sink delivery into the spec buffers; see speculate.go.
	spec       bool
	specMarks  []specMark
	specPCs    []uint16
	specCounts []uint32
}

// NewRecorder creates a recorder for a node executing a program of
// programLen instructions. When truth is set, ground-truth instance IDs are
// recorded alongside markers.
func NewRecorder(nodeID, programLen int, truth bool) *Recorder {
	buf := getDense(programLen)
	return &Recorder{
		nt: &NodeTrace{
			NodeID:     nodeID,
			ProgramLen: programLen,
			Markers:    getMarkerSlice(),
		},
		d:     Dense{Counts: buf.counts, Touched: buf.touched},
		buf:   buf,
		truth: truth,
		minSP: 0xffff,
	}
}

// Release zeroes the recorder's dense counter scratch and returns it to
// the package pool. The node trace (Finish) is unaffected, but the
// recorder — and the CPU counting into it — must not run afterwards. Safe
// to call more than once.
func (r *Recorder) Release() {
	if r.buf == nil {
		return
	}
	for _, pc := range r.d.Touched {
		r.d.Counts[pc] = 0
	}
	r.buf.counts = r.d.Counts
	r.buf.touched = r.d.Touched[:0]
	densePool.Put(r.buf)
	r.buf = nil
	r.d = Dense{}
}

// SetSink installs a streaming consumer called on every Mark, and selects
// whether markers are still materialized into the node trace. With
// discardMarkers set the trace stays empty: the sink (online anatomizer)
// is the only consumer. A nil sink with discardMarkers drops the node's
// markers entirely (useful for unmonitored nodes in campaign runs). Call
// before the run starts.
func (r *Recorder) SetSink(sink StreamSink, discardMarkers bool) {
	r.sink = sink
	r.discard = discardMarkers
}

// Dense exposes the recorder's dense counter for in-place updates by the
// MCU's block executor; the executor increments counters directly instead of
// making a call per executed instruction.
func (r *Recorder) Dense() *Dense { return &r.d }

// ObserveSP records a stack-pointer sample; the minimum since the previous
// marker lands in that marker's MinSP.
func (r *Recorder) ObserveSP(sp uint16) {
	if sp < r.minSP {
		r.minSP = sp
	}
}

// CountPC records one execution of the instruction at pc.
func (r *Recorder) CountPC(pc uint16) { r.d.Count(pc) }

// CountPCs records one execution per entry of pcs, in order. First-touch
// ordering — and therefore delta ordering — is identical to calling CountPC
// in a loop.
func (r *Recorder) CountPCs(pcs []uint16) {
	counts := r.d.Counts
	for _, pc := range pcs {
		if counts[pc] == 0 {
			r.d.Touched = append(r.d.Touched, pc)
		}
		counts[pc]++
	}
}

// Mark appends a lifecycle marker carrying the delta accumulated since the
// previous marker. instance is the ground-truth event-procedure instance ID
// (use -1 when unknown); it is stored only when the recorder was created
// with truth recording enabled.
func (r *Recorder) Mark(kind Kind, arg int, cycle uint64, instance int) {
	if r.sink != nil {
		inst := instance
		if !r.truth {
			inst = -1
		}
		if r.spec {
			r.bufferMark(kind, arg, cycle, inst)
		} else {
			r.sink.OnMark(kind, arg, cycle, inst, r.d.Touched, r.d.Counts)
		}
	}
	if r.discard {
		for _, pc := range r.d.Touched {
			r.d.Counts[pc] = 0
		}
		r.d.Touched = r.d.Touched[:0]
		r.minSP = 0xffff
		return
	}
	var deltas []Delta
	if n := len(r.d.Touched); n > 0 {
		if len(r.arena)+n > cap(r.arena) {
			r.arena = getArena(n)
			r.nt.arenas = append(r.nt.arenas, r.arena)
		}
		start := len(r.arena)
		for _, pc := range r.d.Touched {
			r.arena = append(r.arena, Delta{PC: pc, Count: r.d.Counts[pc]})
			r.d.Counts[pc] = 0
		}
		// Reslice with a hard cap so the marker's view can never alias a
		// later marker's deltas; Touched is reused as scratch.
		deltas = r.arena[start:len(r.arena):len(r.arena)]
		r.d.Touched = r.d.Touched[:0]
	}
	r.nt.Markers = append(r.nt.Markers, Marker{
		Kind: kind, Arg: arg, Cycle: cycle, Deltas: deltas, MinSP: r.minSP,
	})
	r.minSP = 0xffff
	if r.truth {
		r.nt.TruthInstance = append(r.nt.TruthInstance, instance)
	}
}

// Finish returns the accumulated node trace. Instructions executed after
// the last marker are discarded, mirroring a monitor detached at run end.
func (r *Recorder) Finish() *NodeTrace { return r.nt }
