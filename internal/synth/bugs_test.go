package synth

import (
	"testing"

	"sentomist/internal/apps"
)

// ramOrFatal reads one RAM counter or fails the test.
func ramOrFatal(t *testing.T, run *apps.Run, node int, name string) int {
	t.Helper()
	v, err := run.RAM(node, name)
	if err != nil {
		t.Fatalf("RAM(%d, %q): %v", node, name, err)
	}
	return int(v)
}

// bugPair describes one seeded-bug scenario's manifestation contract: the
// symptom counter on the monitored node is positive in every buggy run and
// zero in every fixed run, while the liveness counter is positive in both
// (so a zero symptom count cannot come from a dead scenario).
type bugPair struct {
	name    string
	run     func(BugScenarioConfig) (*apps.Run, error)
	node    int
	symptom string
	live    string
}

var bugPairs = []bugPair{
	{"splash-lrt", SplashLRT, 1, "lrtfires", "rxrounds"},
	{"splash-root-hang", SplashRootHang, 0, "skipcnt", "beaconcnt"},
	{"tree-incons", TreeIncons, 3, "inconscnt", "sentcnt"},
	{"fp-ack", FPAck, 1, "spuriouscnt", "ackedcnt"},
	{"scratch-clobber", ScratchClobber, 1, "corruptions", "digests"},
	{"scratch-clobber-mi", ScratchClobberMI, 1, "corruptions", "digests"},
}

// TestSeededBugsManifest checks the manifestation contract of every pair at
// several seeds: the bench corpus depends on buggy runs containing true
// symptomatic intervals and fixed runs containing none.
func TestSeededBugsManifest(t *testing.T) {
	for _, p := range bugPairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 3; seed++ {
				buggy, err := p.run(BugScenarioConfig{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d buggy: %v", seed, err)
				}
				fixed, err := p.run(BugScenarioConfig{Seed: seed, Fixed: true})
				if err != nil {
					t.Fatalf("seed %d fixed: %v", seed, err)
				}
				if got := ramOrFatal(t, buggy, p.node, p.symptom); got == 0 {
					t.Errorf("seed %d: buggy run shows no %s on node %d", seed, p.symptom, p.node)
				}
				if got := ramOrFatal(t, fixed, p.node, p.symptom); got != 0 {
					t.Errorf("seed %d: fixed run shows %s=%d on node %d", seed, p.symptom, got, p.node)
				}
				for variant, run := range map[string]*apps.Run{"buggy": buggy, "fixed": fixed} {
					if got := ramOrFatal(t, run, p.node, p.live); got == 0 {
						t.Errorf("seed %d: %s run is not live (%s=0)", seed, variant, p.live)
					}
				}
			}
		})
	}
}

// TestSplashLRTSpuriousOnly pins the property that makes every lrt_fire in
// the buggy splash-lrt run a true symptom: dissemination stays alive for the
// whole run (every leaf receives every round the root sent), so no recovery
// fire is ever legitimate.
func TestSplashLRTSpuriousOnly(t *testing.T) {
	run, err := SplashLRT(BugScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sent := ramOrFatal(t, run, apps.SplashRootID, "sentcnt")
	if sent == 0 {
		t.Fatal("root sent no rounds")
	}
	for _, id := range apps.SplashLeaves {
		if got := ramOrFatal(t, run, id, "rxrounds"); got != sent {
			t.Errorf("node %d received %d of %d rounds; a missed round would legitimize a recovery fire", id, got, sent)
		}
	}
}

// TestSplashRootHangWedges pins the hang shape: one rejected round start and
// the buggy root never disseminates again.
func TestSplashRootHangWedges(t *testing.T) {
	run, err := SplashRootHang(BugScenarioConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ramOrFatal(t, run, apps.SplashRootID, "failcnt"); got != 1 {
		t.Errorf("failcnt = %d, want exactly 1 (the wedge means no later round reaches the send path)", got)
	}
	skips := ramOrFatal(t, run, apps.SplashRootID, "skipcnt")
	sent := ramOrFatal(t, run, apps.SplashRootID, "sentcnt")
	if skips < 10 {
		t.Errorf("skipcnt = %d, want the root wedged for most of the run", skips)
	}
	fixed, err := SplashRootHang(BugScenarioConfig{Seed: 1, Fixed: true})
	if err != nil {
		t.Fatal(err)
	}
	fixedSent := ramOrFatal(t, fixed, apps.SplashRootID, "sentcnt")
	if fixedSent <= sent {
		t.Errorf("fixed root sent %d rounds, buggy sent %d; the fix should restore dissemination", fixedSent, sent)
	}
}

// TestFPAckStaleAbsorbsDuplicates pins why the fixed fp-ack run is symptom
// free even though the MAC delivers duplicate data frames: duplicate ACKs
// take the stale path, not the orphaned-ACK path.
func TestFPAckStaleAbsorbsDuplicates(t *testing.T) {
	run, err := FPAck(BugScenarioConfig{Seed: 1, Fixed: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := ramOrFatal(t, run, apps.FPAckRelayID, "stalecnt"); got == 0 {
		t.Skip("no MAC-level duplicates at this seed; stale path not exercised")
	}
	if got := ramOrFatal(t, run, apps.FPAckRelayID, "spuriouscnt"); got != 0 {
		t.Errorf("fixed relay counted %d orphaned ACKs; duplicates must be absorbed by the stale path", got)
	}
}
