package synth

import (
	"sentomist/internal/randx"
	"sentomist/internal/stats"
)

// LargeCampaignConfig bounds LargeCampaign generation.
type LargeCampaignConfig struct {
	// Seed drives generation; equal configs generate equal batches.
	Seed uint64
	// Samples is the number of intervals (default 10000).
	Samples int
	// Dim is the program length in instructions (default 2048).
	Dim int
	// Paths is how many distinct normal code paths the event handler
	// exercises (default 12). Intervals on the same path share their
	// index list, differing only in loop counts.
	Paths int
	// AnomalyRate is the fraction of intervals that take a rare extra
	// branch — the transient-bug symptom a miner should surface
	// (default 0.002).
	AnomalyRate float64
	// Distinct draws each interval's loop jitter continuously instead of
	// quantized, so every counter is distinct — the regime where
	// duplicate collapsing cannot shrink the kernel matrix and training
	// cost truly scales with l (what the campaign-scale benchmarks
	// measure).
	Distinct bool
	// BlockJitter draws an independent quantized jitter per basic block
	// instead of one per interval: combinatorially many distinct counters
	// (so duplicate collapsing cannot shrink the problem) over a small
	// per-dimension value set (so streaming min/max scaling saturates
	// after a modest prefix) — the online-mining benchmark regime, where
	// cross-refit kernel-cache reuse is only valid once the effective
	// scale stops moving. Ignored when Distinct is set.
	BlockJitter bool
}

// LargeCampaign synthesizes the instruction counters of one large testing
// campaign without running the simulator: tens of thousands of
// event-handling intervals over a Dim-instruction program. The shape
// mirrors what the recorder produces (and what the mining-at-scale
// benchmarks need): each interval executes one of a few code paths — a
// handful of contiguous basic blocks, so index lists are long aligned runs
// shared across intervals — with per-interval loop counts quantized to
// small integers, which makes exact duplicate counters common, exactly
// like real campaigns. A small fraction of intervals additionally executes
// a rare block with an outsized count.
func LargeCampaign(cfg LargeCampaignConfig) []stats.Sparse {
	l := cfg.Samples
	if l <= 0 {
		l = 10000
	}
	dim := cfg.Dim
	if dim <= 0 {
		dim = 2048
	}
	paths := cfg.Paths
	if paths <= 0 {
		paths = 12
	}
	rate := cfg.AnomalyRate
	if rate < 0 {
		rate = 0
	} else if rate == 0 {
		rate = 0.002
	}
	rng := randx.New(cfg.Seed ^ 0x1a59eca)

	// A basic block is a run of consecutive PCs; a path is 3–6 blocks.
	type block struct {
		start, n int
		base     float64
	}
	makeBlocks := func(count int) []block {
		bs := make([]block, count)
		for i := range bs {
			n := 8 + rng.Intn(25)
			start := rng.Intn(dim - n)
			bs[i] = block{start: start, n: n, base: float64(1 + rng.Intn(6))}
		}
		return bs
	}
	pathBlocks := make([][]block, paths)
	for p := range pathBlocks {
		pathBlocks[p] = makeBlocks(3 + rng.Intn(4))
	}
	rare := makeBlocks(2)

	buf := make([]float64, dim)
	out := make([]stats.Sparse, l)
	for s := range out {
		for i := range buf {
			buf[i] = 0
		}
		blocks := pathBlocks[rng.Intn(paths)]
		// Loop counts quantized to a few integers: intervals on the same
		// path with the same draw are bit-identical counters.
		jitter := float64(rng.Intn(4))
		if cfg.Distinct {
			jitter = rng.Float64() * 4
		}
		for _, b := range blocks {
			if cfg.BlockJitter && !cfg.Distinct {
				jitter = float64(rng.Intn(4))
			}
			for k := 0; k < b.n; k++ {
				buf[b.start+k] += b.base + jitter
			}
		}
		if rng.Float64() < rate {
			burst := float64(50 + rng.Intn(200))
			for _, b := range rare {
				for k := 0; k < b.n; k++ {
					buf[b.start+k] += burst
				}
			}
		}
		out[s] = stats.DenseToSparse(buf)
	}
	return out
}
