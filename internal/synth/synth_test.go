package synth

import (
	"testing"

	"sentomist/internal/core"
	"sentomist/internal/dev"
	"sentomist/internal/lifecycle"
	"sentomist/internal/node"
	"sentomist/internal/trace"
)

// truthExtents mirrors the lifecycle ground-truth check: per instance, its
// first (int) and last (taskEnd/reti) marker.
func truthExtents(nt *trace.NodeTrace) (start, end map[int]int) {
	start = make(map[int]int)
	end = make(map[int]int)
	for i, m := range nt.Markers {
		inst := nt.TruthInstance[i]
		if inst == node.BootInstance {
			continue
		}
		switch m.Kind {
		case trace.Int:
			if _, seen := start[inst]; !seen {
				start[inst] = i
			}
		case trace.TaskEnd, trace.Reti:
			end[inst] = i
		}
	}
	return start, end
}

// TestSoakRandomScenarios: across many generated scenarios, the trace must
// validate, interval extraction must match ground truth exactly, and the
// full mining pipeline must run end to end.
func TestSoakRandomScenarios(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	totalIntervals := 0
	for seed := 0; seed < seeds; seed++ {
		run, err := Generate(Config{Seed: uint64(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := run.Trace.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, nt := range run.Trace.Nodes {
			ivs, err := lifecycle.NewSequence(nt).Extract()
			if err != nil {
				t.Fatalf("seed %d node %d: %v", seed, nt.NodeID, err)
			}
			start, end := truthExtents(nt)
			for _, iv := range ivs {
				if !iv.Complete {
					continue
				}
				totalIntervals++
				if iv.StartMarker != start[iv.Truth] || iv.EndMarker != end[iv.Truth] {
					t.Fatalf("seed %d node %d instance %d: extracted [%d,%d], truth [%d,%d]",
						seed, nt.NodeID, iv.Truth,
						iv.StartMarker, iv.EndMarker, start[iv.Truth], end[iv.Truth])
				}
			}
		}
		// The pipeline must run per node (each generated node runs its
		// own binary, so cross-node pooling is rightly rejected).
		for _, nt := range run.Trace.Nodes {
			_, err = core.Mine(
				[]core.RunInput{{Trace: run.Trace, Programs: run.Programs}},
				core.Config{IRQ: dev.IRQTimer0, Nodes: []int{nt.NodeID}},
			)
			if err != nil && err != core.ErrNoIntervals {
				t.Fatalf("seed %d node %d: mine: %v", seed, nt.NodeID, err)
			}
		}
	}
	t.Logf("soak verified %d intervals across %d random scenarios", totalIntervals, seeds)
	if totalIntervals < 500 {
		t.Fatalf("soak exercised only %d intervals; generation too timid", totalIntervals)
	}
}

// TestGenerateDeterministic: the same seed reproduces the same run.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Nodes) != len(b.Trace.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range a.Trace.Nodes {
		ma, mb := a.Trace.Nodes[i].Markers, b.Trace.Nodes[i].Markers
		if len(ma) != len(mb) {
			t.Fatalf("node %d: marker counts differ (%d vs %d)", i, len(ma), len(mb))
		}
		for j := range ma {
			if ma[j].Kind != mb[j].Kind || ma[j].Cycle != mb[j].Cycle {
				t.Fatalf("node %d marker %d differs", i, j)
			}
		}
	}
}
