// Package synth generates randomized multi-node scenarios — random
// topologies, random timer periods, randomly wired task chains, optional
// preemptible handlers, interrupt fuzzing, and radio beacons. It exists to
// soak-test the substrate and the analyzer far beyond the hand-written
// case studies: every generated workload still has to satisfy the
// ground-truth interval property.
package synth

import (
	"fmt"
	"strings"

	"sentomist/internal/apps"
	"sentomist/internal/dev"
	"sentomist/internal/randx"
)

// Config bounds scenario generation.
type Config struct {
	// Seed drives both generation and the run itself.
	Seed uint64
	// MaxNodes caps the node count (min 1; default 4).
	MaxNodes int
	// ExactNodes, when positive, pins the node count (for scalability
	// measurements); it overrides MaxNodes.
	ExactNodes int
	// Seconds is the simulated run length (default 0.5).
	Seconds float64
	// NodeWorkers bounds how many nodes advance concurrently inside the
	// scheduler's conservative-lookahead sections; <= 1 (the default)
	// keeps node execution sequential, < 0 selects GOMAXPROCS. Traces
	// are byte-identical at any setting.
	NodeWorkers int
	// Speculate enables optimistic sections with snapshot/rollback on top
	// of the parallel engine (see sim.Config.Speculate); SpecDepth
	// overrides the initial window depth in quanta (0 = the default).
	// Traces are byte-identical at any setting.
	Speculate bool
	SpecDepth int
}

// Generate builds and executes a random scenario, returning the finished
// run. Programs are generated so that every posted task terminates (tasks
// only post strictly higher-numbered tasks) and stacks stay bounded.
func Generate(cfg Config) (*apps.Run, error) {
	maxNodes := cfg.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 4
	}
	seconds := cfg.Seconds
	if seconds <= 0 {
		seconds = 0.5
	}
	rng := randx.New(cfg.Seed ^ 0x5e17)
	nNodes := 1 + rng.Intn(maxNodes)
	if cfg.ExactNodes > 0 {
		nNodes = cfg.ExactNodes
	}

	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	s.SetSpeculation(cfg.Speculate, cfg.SpecDepth)
	withRadio := nNodes > 1 && rng.Bool(0.7)
	for id := 0; id < nNodes; id++ {
		g := &progGen{rng: rng.Split(uint64(id) + 17), radio: withRadio, nodeID: id, nNodes: nNodes}
		spec := apps.NodeSpec{
			ID:     id,
			Source: g.source(),
			Timer0: true,
			Timer1: g.useTimer1,
			Radio:  withRadio,
		}
		if g.useFuzzer {
			spec.FuzzIRQs = []int{dev.IRQTimer1}
			spec.FuzzMinGap = 300
			spec.FuzzMaxGap = 9000
		}
		if err := s.AddNode(spec); err != nil {
			return nil, fmt.Errorf("synth: node %d: %w", id, err)
		}
	}
	if withRadio {
		// Random connected topology: a chain plus random extra links.
		for id := 1; id < nNodes; id++ {
			s.Link(id-1, id, rng.Float64()*0.1)
		}
		for i := 0; i < nNodes; i++ {
			for j := i + 2; j < nNodes; j++ {
				if rng.Bool(0.3) {
					s.Link(i, j, rng.Float64()*0.1)
				}
			}
		}
	}
	return s.Run(seconds)
}

// progGen emits one random program.
type progGen struct {
	rng    *randx.RNG
	radio  bool
	nodeID int
	nNodes int

	useTimer1 bool
	useFuzzer bool
	nTasks    int
}

func (g *progGen) source() string {
	g.nTasks = 1 + g.rng.Intn(4)
	// Timer1 is either a second periodic source or the fuzzer's IRQ,
	// never both.
	g.useFuzzer = g.rng.Bool(0.4)
	g.useTimer1 = !g.useFuzzer && g.rng.Bool(0.6)

	var b strings.Builder
	b.WriteString(".var acc\n.var beats\n")
	b.WriteString(".vector 1, isr_a\n")
	if g.useTimer1 || g.useFuzzer {
		b.WriteString(".vector 2, isr_b\n")
	}
	if g.radio {
		b.WriteString(".vector 4, isr_rx\n.vector 5, isr_txdone\n")
	}
	for i := 0; i < g.nTasks; i++ {
		fmt.Fprintf(&b, ".task %d, task%d\n", i, i)
	}
	b.WriteString(".entry boot\n\nboot:\n")
	p0 := 1500 + g.rng.Intn(9000)
	fmt.Fprintf(&b, "\tldi r0, %d\n\tout T0_LO, r0\n\tldi r0, %d\n\tout T0_HI, r0\n", p0&0xff, p0>>8)
	if g.useTimer1 {
		p1 := 2000 + g.rng.Intn(11000)
		fmt.Fprintf(&b, "\tldi r0, %d\n\tout T1_LO, r0\n\tldi r0, %d\n\tout T1_HI, r0\n", p1&0xff, p1>>8)
		b.WriteString("\tldi r0, 1\n\tout T1_CTRL, r0\n")
	}
	b.WriteString("\tldi r0, 1\n\tout T0_CTRL, r0\n\tsei\n\tosrun\n\n")

	// Handler A: posts 0..2 random tasks; sometimes preemptible with a
	// linger window so nesting actually occurs.
	b.WriteString("isr_a:\n")
	if g.rng.Bool(0.4) {
		b.WriteString("\tsei\n\tpush r0\n")
		fmt.Fprintf(&b, "\tldi r0, %d\nia_spin:\n\tdec r0\n\tbrne ia_spin\n\tpop r0\n", 20+g.rng.Intn(60))
	}
	for i, n := 0, g.rng.Intn(3); i < n; i++ {
		fmt.Fprintf(&b, "\tpost %d\n", g.rng.Intn(g.nTasks))
	}
	b.WriteString("\treti\n\n")

	if g.useTimer1 || g.useFuzzer {
		b.WriteString("isr_b:\n\tpush r0\n\tlds r0, beats\n\tinc r0\n\tsts beats, r0\n\tpop r0\n")
		if g.rng.Bool(0.5) {
			fmt.Fprintf(&b, "\tpost %d\n", g.rng.Intn(g.nTasks))
		}
		b.WriteString("\treti\n\n")
	}
	if g.radio {
		b.WriteString(`isr_rx:
	push r0
	push r1
rxd:
	in  r1, RX_LEN
	cpi r1, 0
	breq rxe
	in  r1, RX_FIFO
	jmp rxd
rxe:
	pop r1
	pop r0
	reti

isr_txdone:
	reti

`)
	}

	for i := 0; i < g.nTasks; i++ {
		fmt.Fprintf(&b, "task%d:\n\tpush r0\n", i)
		// Random work.
		if spin := g.rng.Intn(120); spin > 4 {
			fmt.Fprintf(&b, "\tldi r0, %d\nt%d_spin:\n\tdec r0\n\tbrne t%d_spin\n", spin, i, i)
		}
		b.WriteString("\tlds r0, acc\n\tinc r0\n\tsts acc, r0\n")
		// Post only strictly higher tasks: chains always terminate.
		for j := i + 1; j < g.nTasks; j++ {
			if g.rng.Bool(0.35) {
				fmt.Fprintf(&b, "\tpost %d\n", j)
			}
		}
		// Occasionally beacon over the radio.
		if g.radio && i == 0 && g.rng.Bool(0.5) {
			b.WriteString(`	push r1
	in  r1, STATUS
	andi r1, ST_BUSY
	brne nosend` + "\n")
			b.WriteString("\tldi r1, BCAST\n\tout TX_DST, r1\n\tlds r1, acc\n\tout TX_FIFO, r1\n\tldi r1, CMD_SEND\n\tout TX_CMD, r1\nnosend:\n\tpop r1\n")
		}
		b.WriteString("\tpop r0\n\tret\n\n")
	}
	return b.String()
}
