package synth

import (
	"fmt"
	"strings"

	"sentomist/internal/apps"
)

// MultihopConfig parameterizes the deterministic multi-hop benchmark
// scenario: a chain of compute-heavy nodes forwarding traffic hop by hop.
// Unlike Generate, every constant derives from the node ID alone, so the
// workload is identical across runs and worker counts — the scenario is the
// parallel scheduler's benchmark and differential-test subject.
type MultihopConfig struct {
	// Nodes is the chain length (default 12, min 2).
	Nodes int
	// Seconds is the simulated run length (default 2).
	Seconds float64
	// Seed is recorded in the trace; the workload itself is deterministic.
	Seed uint64
	// NodeWorkers bounds how many nodes advance concurrently inside the
	// scheduler's conservative-lookahead sections; <= 1 stays sequential.
	NodeWorkers int
	// Speculate enables optimistic sections with snapshot/rollback on top
	// of the parallel engine (see sim.Config.Speculate); SpecDepth
	// overrides the initial window depth in quanta (0 = the default).
	// Traces are byte-identical at any setting.
	Speculate bool
	SpecDepth int
}

// BuildMultihop constructs the benchmark scenario without running it.
func BuildMultihop(cfg MultihopConfig) (*apps.Scenario, error) {
	n := cfg.Nodes
	if n <= 0 {
		n = 12
	}
	if n < 2 {
		n = 2
	}
	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	s.SetSpeculation(cfg.Speculate, cfg.SpecDepth)
	for id := 0; id < n; id++ {
		next := id + 1
		if next >= n {
			next = -1 // chain sink
		}
		if err := s.AddNode(apps.NodeSpec{
			ID:     id,
			Source: multihopSource(id, next),
			Timer0: true,
			Radio:  true,
		}); err != nil {
			return nil, fmt.Errorf("synth: multihop node %d: %w", id, err)
		}
	}
	for id := 1; id < n; id++ {
		s.Link(id-1, id, 0)
	}
	return s, nil
}

// Multihop builds and executes the benchmark scenario.
func Multihop(cfg MultihopConfig) (*apps.Run, error) {
	seconds := cfg.Seconds
	if seconds <= 0 {
		seconds = 2
	}
	s, err := BuildMultihop(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(seconds)
}

// multihopSource emits one chain node's program. Each node runs a periodic
// compute task at ~75% duty cycle (the parallelizable bulk), originates a
// unicast packet to its downstream neighbour once every 128 periods, and
// forwards every fourth received byte one hop further — so packets travel
// several hops while the medium stays mostly quiet. next < 0 marks the
// sink, which only counts arrivals.
func multihopSource(id, next int) string {
	var b strings.Builder
	b.WriteString(".var acc\n.var cnt\n.var relay\n.var rxn\n")
	b.WriteString(".vector 1, isr_t0\n.vector 4, isr_rx\n.vector 5, isr_txdone\n")
	b.WriteString(".task 0, work\n.task 1, forward\n")
	b.WriteString(".entry boot\n\nboot:\n")
	// Staggered periods keep the chain's compute phases from aligning.
	period := 2880 + 48*id
	fmt.Fprintf(&b, "\tldi r0, %d\n\tout T0_LO, r0\n\tldi r0, %d\n\tout T0_HI, r0\n",
		period&0xff, period>>8)
	b.WriteString("\tldi r0, 1\n\tout T0_CTRL, r0\n\tsei\n\tosrun\n\n")

	b.WriteString("isr_t0:\n\tpost 0\n\treti\n\n")

	b.WriteString(`isr_rx:
	push r0
	push r1
rx_d:
	in  r1, RX_LEN
	cpi r1, 0
	breq rx_e
	in  r1, RX_FIFO
	sts relay, r1
	lds r0, rxn
	inc r0
	sts rxn, r0
`)
	if next >= 0 {
		// Forward every fourth byte: traffic thins geometrically down the
		// chain but still exercises genuine multi-hop delivery.
		b.WriteString("\tandi r0, 3\n\tbrne rx_d\n\tpost 1\n")
	}
	b.WriteString("\tjmp rx_d\nrx_e:\n\tpop r1\n\tpop r0\n\treti\n\nisr_txdone:\n\treti\n\n")

	// work: ~2100 cycles of spinning per period (the parallel payload),
	// then the occasional origination toward the downstream neighbour.
	b.WriteString(`work:
	push r0
	push r1
	ldi r1, 8
w_outer:
	ldi r0, 130
w_inner:
	dec r0
	brne w_inner
	dec r1
	brne w_outer
	lds r0, acc
	inc r0
	sts acc, r0
	lds r0, cnt
	inc r0
	sts cnt, r0
`)
	if next >= 0 {
		phase := (id*11 + 3) & 0x7f
		fmt.Fprintf(&b, "\tandi r0, 127\n\tcpi r0, %d\n\tbrne w_done\n", phase)
		b.WriteString(`	in  r0, STATUS
	andi r0, ST_BUSY
	brne w_done
`)
		fmt.Fprintf(&b, "\tldi r0, %d\n\tout TX_DST, r0\n", next)
		b.WriteString("\tlds r0, cnt\n\tout TX_FIFO, r0\n\tldi r0, CMD_SEND\n\tout TX_CMD, r0\n")
	}
	b.WriteString("w_done:\n\tpop r1\n\tpop r0\n\tret\n\n")

	b.WriteString("forward:\n\tpush r0\n")
	if next >= 0 {
		b.WriteString(`	in  r0, STATUS
	andi r0, ST_BUSY
	brne f_done
`)
		fmt.Fprintf(&b, "\tldi r0, %d\n\tout TX_DST, r0\n", next)
		b.WriteString("\tlds r0, relay\n\tout TX_FIFO, r0\n\tldi r0, CMD_SEND\n\tout TX_CMD, r0\n")
	} else {
		b.WriteString("\tlds r0, acc\n\tinc r0\n\tsts acc, r0\n")
	}
	b.WriteString("f_done:\n\tpop r0\n\tret\n")
	return b.String()
}
