package synth

import (
	"fmt"

	"sentomist/internal/apps"
	"sentomist/internal/dev"
)

// Seeded-bug scenarios for the Sentomist-bench corpus (internal/bench):
// each runner wires one of the firmware pairs from internal/apps into a
// deterministic multi-hop scenario and executes it. The Fixed flag selects
// the repaired firmware on the monitored node(s); everything else —
// topology, seeds, traffic — is identical across the pair.

// BugScenarioConfig parameterizes one seeded-bug run.
type BugScenarioConfig struct {
	// Seconds is the run length; each runner has a default tuned so the
	// buggy variant manifests a handful of symptomatic intervals.
	Seconds float64
	// Seed drives all randomness.
	Seed uint64
	// Fixed selects the repaired firmware.
	Fixed bool
	// NodeWorkers bounds how many nodes advance concurrently inside the
	// scheduler's conservative-lookahead sections; <= 1 stays sequential.
	NodeWorkers int
}

func (c BugScenarioConfig) seconds(def float64) float64 {
	if c.Seconds > 0 {
		return c.Seconds
	}
	return def
}

// bugLFSRSeed derives a nonzero per-node LFSR seed from the node ID.
func bugLFSRSeed(id int) uint8 {
	return uint8(0x5a+37*id) | 1
}

// splashScenario wires the shared Splash flood: a root and four non-root
// nodes in a two-level tree (root hears 1 and 2; 3 hangs off 1, 4 off 2).
// buggyRoot/buggyLeaf select the firmware variants independently so each
// catalog entry seeds exactly one bug; rootBeacons enables the root's
// control-beacon traffic (the contention source of the root-hang bug, left
// off in the lrt scenario so the only dissemination gaps are seeded ones).
func splashScenario(cfg BugScenarioConfig, buggyRoot, buggyLeaf, rootBeacons bool) (*apps.Run, error) {
	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.SplashRootID,
		Source: apps.SplashRootSource(buggyRoot, rootBeacons),
		Timer0: true, Timer1: true, Radio: true,
		RAMInit: map[string]uint8{"lfsr": bugLFSRSeed(apps.SplashRootID)},
	}); err != nil {
		return nil, fmt.Errorf("synth: splash root: %w", err)
	}
	for _, id := range apps.SplashLeaves {
		if err := s.AddNode(apps.NodeSpec{
			ID:     id,
			Source: apps.SplashLeafSource(buggyLeaf),
			Timer0: true, Radio: true,
			RAMInit: map[string]uint8{"lfsr": bugLFSRSeed(id)},
		}); err != nil {
			return nil, fmt.Errorf("synth: splash leaf %d: %w", id, err)
		}
	}
	// Lossless links: every dissemination gap in these traces is seeded,
	// not drawn — the ground-truth oracles depend on it.
	s.Link(0, 1, 0)
	s.Link(0, 2, 0)
	s.Link(1, 3, 0)
	s.Link(2, 4, 0)
	s.Link(1, 2, 0) // the relays hear each other (flood redundancy)
	return s.Run(cfg.seconds(20))
}

// SplashLRT runs the splash-lrt scenario: the recovery-timer lost-update
// race on the non-root nodes (the root always runs repaired firmware so
// rounds keep flowing). Monitored: the recovery tick (IRQ Timer0) on
// SplashLeaves.
func SplashLRT(cfg BugScenarioConfig) (*apps.Run, error) {
	return splashScenario(cfg, false, !cfg.Fixed, false)
}

// SplashRootHang runs the splash-root-hang scenario: the unhandled
// round-start rejection on the root (the leaves always run repaired
// firmware). Monitored: the round timer (IRQ Timer0) on the root.
func SplashRootHang(cfg BugScenarioConfig) (*apps.Run, error) {
	return splashScenario(cfg, !cfg.Fixed, false, true)
}

// SplashLRTIRQ and friends name each scenario's monitored event type.
const (
	SplashLRTIRQ      = dev.IRQTimer0
	SplashRootHangIRQ = dev.IRQTimer0
	TreeInconsIRQ     = dev.IRQTimer0
	FPAckIRQ          = dev.IRQRadioRX
	ScratchIRQ        = dev.IRQTimer0
)

// TreeIncons runs the ctp-tree-incons scenario: a leaf between two
// beaconing candidate parents, with the torn (parent, hop) pair read.
// Monitored: the route-maintenance tick (IRQ Timer0) on the leaf.
func TreeIncons(cfg BugScenarioConfig) (*apps.Run, error) {
	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.TreeRootID,
		Source: apps.TreeRouteSinkSource(),
		Radio:  true,
	}); err != nil {
		return nil, fmt.Errorf("synth: tree root: %w", err)
	}
	for _, p := range []struct{ id, hop int }{
		{apps.TreeParentAID, 1},
		{apps.TreeParentBID, 2},
	} {
		if err := s.AddNode(apps.NodeSpec{
			ID:     p.id,
			Source: apps.TreeRouteParentSource(),
			Timer0: true, Radio: true,
			RAMInit: map[string]uint8{
				"bid":  uint8(p.id),
				"bhop": uint8(p.hop),
				"lfsr": bugLFSRSeed(p.id),
			},
		}); err != nil {
			return nil, fmt.Errorf("synth: tree parent %d: %w", p.id, err)
		}
	}
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.TreeLeafID,
		Source: apps.TreeRouteLeafSource(!cfg.Fixed),
		Timer0: true, Radio: true,
		RAMInit: map[string]uint8{"lfsr": bugLFSRSeed(apps.TreeLeafID)},
	}); err != nil {
		return nil, fmt.Errorf("synth: tree leaf: %w", err)
	}
	s.Link(apps.TreeRootID, apps.TreeParentAID, 0.01)
	s.Link(apps.TreeRootID, apps.TreeParentBID, 0.01)
	s.Link(apps.TreeParentAID, apps.TreeLeafID, 0.01)
	s.Link(apps.TreeParentBID, apps.TreeLeafID, 0.01)
	s.Link(apps.TreeParentAID, apps.TreeParentBID, 0.01)
	return s.Run(cfg.seconds(20))
}

// FPAck runs the fp-ack scenario: source -> relay -> sink with
// application-level ACKs and the type-unchecked acceptance on the relay.
// Monitored: packet arrival (IRQ RadioRX) on the relay.
func FPAck(cfg BugScenarioConfig) (*apps.Run, error) {
	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.FPAckSinkID,
		Source: apps.FPAckSinkSource(),
		Radio:  true,
	}); err != nil {
		return nil, fmt.Errorf("synth: fpack sink: %w", err)
	}
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.FPAckRelayID,
		Source: apps.FPAckRelaySource(!cfg.Fixed),
		Radio:  true,
	}); err != nil {
		return nil, fmt.Errorf("synth: fpack relay: %w", err)
	}
	if err := s.AddNode(apps.NodeSpec{
		ID:     apps.FPAckSourceID,
		Source: apps.FPAckSourceSource(0xb3, 0x07),
		Timer0: true, Radio: true,
	}); err != nil {
		return nil, fmt.Errorf("synth: fpack source: %w", err)
	}
	// Routing is a chain (the source addresses the relay, the relay the
	// sink), but all three nodes are mutually audible: the source-sink link
	// carries no decoded traffic — unicast frames are not decoded by third
	// parties — yet lets carrier sense see the whole exchange, so the
	// interesting orderings come from timing, not hidden-terminal smashes.
	s.Link(apps.FPAckSourceID, apps.FPAckRelayID, 0)
	s.Link(apps.FPAckRelayID, apps.FPAckSinkID, 0)
	s.Link(apps.FPAckSourceID, apps.FPAckSinkID, 0)
	return s.Run(cfg.seconds(20))
}

// scratchScenario wires one fuzzed node with the given source and fuzzed
// IRQ set.
func scratchScenario(cfg BugScenarioConfig, source string, irqs []int) (*apps.Run, error) {
	s := apps.NewScenario(cfg.Seed)
	s.SetParallelism(cfg.NodeWorkers)
	if err := s.AddNode(apps.NodeSpec{
		ID:         apps.ScratchNodeID,
		Source:     source,
		Timer0:     true,
		FuzzIRQs:   irqs,
		FuzzMinGap: 2_000,
		FuzzMaxGap: 40_000,
	}); err != nil {
		return nil, fmt.Errorf("synth: scratch node: %w", err)
	}
	return s.Run(cfg.seconds(10))
}

// ScratchClobber runs the shared-scratch clobber under single-IRQ fuzzing
// (promoted from examples/customapp). Monitored: the digest tick (IRQ
// Timer0) on the node.
func ScratchClobber(cfg BugScenarioConfig) (*apps.Run, error) {
	return scratchScenario(cfg, apps.ScratchAppSource(!cfg.Fixed), []int{dev.IRQTimer1})
}

// ScratchClobberMI is the multi-IRQ variant: motion and vibration fuzzers
// race the same digest window.
func ScratchClobberMI(cfg BugScenarioConfig) (*apps.Run, error) {
	return scratchScenario(cfg, apps.ScratchAppMISource(!cfg.Fixed), []int{dev.IRQTimer1, dev.IRQADC})
}
