package synth

// Differential testing of the speculative (Time-Warp-lite) scheduler over
// the many-node synthetic scenarios: optimistic sections with rollback must
// produce byte-identical traces to the sequential engine on the multihop
// benchmark chain, on random generated topologies, and under fuzzing — at
// every worker count and speculation depth, including configurations chosen
// to force rollbacks.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"sentomist/internal/apps"
)

// specMultihop runs the benchmark chain with speculation and returns the
// serialized trace plus the run's scheduler stats.
func specMultihop(t testing.TB, nodes, workers, depth int, seconds float64) ([]byte, *apps.Run) {
	t.Helper()
	r, err := Multihop(MultihopConfig{
		Nodes: nodes, Seconds: seconds, Seed: 1, NodeWorkers: workers,
		Speculate: workers > 1, SpecDepth: depth,
	})
	if err != nil {
		t.Fatalf("multihop(nodes=%d workers=%d depth=%d): %v", nodes, workers, depth, err)
	}
	var b bytes.Buffer
	if err := r.Trace.WriteBinary(&b); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b.Bytes(), r
}

// TestMultihopSpeculativeDifferential: the benchmark chain's trace must be
// byte-identical between the sequential scheduler and speculative sections
// at every worker count and initial window depth, across chain lengths.
// Depth 512 on the long chains maximizes optimistic exposure and reliably
// forces rollbacks; depth 8 forces rapid section turnover.
func TestMultihopSpeculativeDifferential(t *testing.T) {
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	depths := []int{8, 0, 512}
	for _, nodes := range []int{8, 12, 16} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			seconds := 1.0
			if testing.Short() {
				seconds = 0.3
			}
			seq := multihopTrace(t, nodes, 1, seconds)
			for _, w := range counts {
				for _, d := range depths {
					if spec, _ := specMultihop(t, nodes, w, d, seconds); !bytes.Equal(seq, spec) {
						t.Errorf("workers=%d depth=%d: trace differs from sequential (%d vs %d bytes)",
							w, d, len(seq), len(spec))
					}
				}
			}
		})
	}
}

// TestMultihopSpeculationEngages: the benchmark scenario must actually run
// through optimistic sections — committing the bulk of its cycles
// speculatively — and the deep-window configuration must exercise the
// rollback path, all while staying byte-identical (checked above).
func TestMultihopSpeculationEngages(t *testing.T) {
	_, r := specMultihop(t, 12, 4, 512, 2.0)
	defer r.Release()
	st := r.Stats
	if st.SpecSections == 0 {
		t.Fatal("no speculative sections ran")
	}
	if st.SpecCommits == 0 {
		t.Fatal("no speculative windows committed")
	}
	if st.SpecRollbacks == 0 {
		t.Fatal("no rollbacks at depth 512; the test no longer exercises invalidation")
	}
	if st.SpecCyclesCommitted == 0 {
		t.Fatal("no cycles committed speculatively")
	}
	if st.SpecCyclesCommitted < st.SpecCyclesDiscarded {
		t.Errorf("speculation wasted more than it committed: %d committed vs %d discarded",
			st.SpecCyclesCommitted, st.SpecCyclesDiscarded)
	}
}

// TestSpeculativeRandomTopologies extends the random-scenario differential
// sweep to the speculative engine: generated workloads (random topologies,
// fuzzer-driven interrupts, radio beacons) must stay byte-identical to the
// sequential run at every worker count and depth.
func TestSpeculativeRandomTopologies(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	depths := []int{0, 256}
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{Seed: uint64(seed), ExactNodes: 8, Seconds: 0.5}
		seq, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sb bytes.Buffer
		if err := seq.Trace.WriteBinary(&sb); err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
			for _, d := range depths {
				cfg.NodeWorkers, cfg.Speculate, cfg.SpecDepth = w, true, d
				spec, err := Generate(cfg)
				if err != nil {
					t.Fatalf("seed %d workers %d depth %d: %v", seed, w, d, err)
				}
				var pb bytes.Buffer
				if err := spec.Trace.WriteBinary(&pb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Errorf("seed %d workers %d depth %d: speculative trace differs (%d vs %d bytes)",
						seed, w, d, sb.Len(), pb.Len())
				}
			}
		}
	}
}

// FuzzSpeculativeTrace fuzzes the speculative scheduler's equivalence gate:
// for any generation seed, node count, worker count, and window depth, the
// serialized trace must be byte-identical to the sequential run.
func FuzzSpeculativeTrace(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(4), uint16(0))
	f.Add(uint64(7), uint8(12), uint8(2), uint16(512))
	f.Add(uint64(42), uint8(3), uint8(3), uint16(8))
	f.Add(uint64(1234), uint8(16), uint8(8), uint16(100))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, workers uint8, depth uint16) {
		n := int(nodes%16) + 2
		w := int(workers%8) + 2
		d := int(depth % 1024)
		cfg := Config{Seed: seed, ExactNodes: n, Seconds: 0.3}
		seq, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		if err := seq.Trace.WriteBinary(&sb); err != nil {
			t.Fatal(err)
		}
		cfg.NodeWorkers, cfg.Speculate, cfg.SpecDepth = w, true, d
		spec, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := spec.Trace.WriteBinary(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("seed %d nodes %d workers %d depth %d: speculative trace differs (%d vs %d bytes)",
				seed, n, w, d, sb.Len(), pb.Len())
		}
	})
}

// BenchmarkRecordSpeculativeNodes measures the record phase of the
// benchmark chain under the speculative engine across worker counts,
// against the conservative engine at the same counts (workers=N/spec=off)
// and the sequential baseline (workers=1). Cycles-per-second rates make
// runs on different hardware comparable.
func BenchmarkRecordSpeculativeNodes(b *testing.B) {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	const seconds = 2.0
	for _, w := range counts {
		for _, spec := range []bool{false, true} {
			if w == 1 && spec {
				continue
			}
			w, spec := w, spec
			name := fmt.Sprintf("workers=%d/spec=%v", w, spec)
			b.Run(name, func(b *testing.B) {
				var roll, sect uint64
				for i := 0; i < b.N; i++ {
					r, err := Multihop(MultihopConfig{
						Nodes: 12, Seconds: seconds, Seed: 1, NodeWorkers: w,
						Speculate: spec,
					})
					if err != nil {
						b.Fatal(err)
					}
					roll += r.Stats.SpecRollbacks
					sect += r.Stats.SpecSections
					r.Release()
				}
				b.ReportMetric(seconds*1e6*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
				if sect > 0 {
					b.ReportMetric(float64(roll)/float64(b.N), "rollbacks/op")
				}
			})
		}
	}
}
