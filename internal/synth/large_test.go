package synth

import (
	"testing"

	"sentomist/internal/stats"
)

func TestLargeCampaignShape(t *testing.T) {
	batch := LargeCampaign(LargeCampaignConfig{Seed: 9, Samples: 3000, Dim: 1024})
	if len(batch) != 3000 {
		t.Fatalf("got %d samples", len(batch))
	}
	dups := map[string]int{}
	anomalous := 0
	for i, s := range batch {
		if s.Dim != 1024 {
			t.Fatalf("sample %d dim %d", i, s.Dim)
		}
		if s.NNZ() == 0 || s.NNZ() > 1024 {
			t.Fatalf("sample %d nnz %d", i, s.NNZ())
		}
		for k := 1; k < len(s.Idx); k++ {
			if s.Idx[k] <= s.Idx[k-1] {
				t.Fatalf("sample %d indices not strictly ascending", i)
			}
		}
		var peak float64
		for _, v := range s.Val {
			if v > peak {
				peak = v
			}
		}
		if peak >= 50 {
			anomalous++
		}
		key := make([]byte, 0, 16*len(s.Idx))
		for k, idx := range s.Idx {
			key = append(key, byte(idx), byte(idx>>8), byte(idx>>16), byte(int64(s.Val[k])))
		}
		dups[string(key)]++
	}
	// The quantized path/jitter structure must produce many exact
	// duplicates (the dedup fast path's regime) …
	if len(dups) >= len(batch)/2 {
		t.Fatalf("only %d/%d distinct counters; expected heavy duplication", len(dups), len(batch))
	}
	// … and the default anomaly rate a small but nonzero symptom count.
	if anomalous == 0 || anomalous > len(batch)/20 {
		t.Fatalf("%d anomalous samples out of %d", anomalous, len(batch))
	}
}

// TestLargeCampaignBlockJitter pins the online-benchmark regime: per-block
// jitter makes most counters distinct (dedup cannot collapse the kernel
// matrix) while per-dimension values stay on a small quantized grid, so a
// streaming min/max scale saturates after a modest prefix.
func TestLargeCampaignBlockJitter(t *testing.T) {
	batch := LargeCampaign(LargeCampaignConfig{
		Seed: 9, Samples: 2000, Dim: 1024, BlockJitter: true, AnomalyRate: -1,
	})
	dups := map[string]int{}
	perDim := make(map[int32]map[float64]bool)
	for _, s := range batch {
		key := make([]byte, 0, 16*len(s.Idx))
		for k, idx := range s.Idx {
			key = append(key, byte(idx), byte(idx>>8), byte(int64(s.Val[k]*8)))
			vs := perDim[idx]
			if vs == nil {
				vs = map[float64]bool{}
				perDim[idx] = vs
			}
			vs[s.Val[k]] = true
		}
		dups[string(key)]++
	}
	if len(dups) < len(batch)/2 {
		t.Fatalf("only %d/%d distinct counters; block jitter should defeat dedup", len(dups), len(batch))
	}
	// Quantized jitter over overlapping blocks: each dimension's value set
	// stays small, so min/max stop moving early in the stream.
	for d, vs := range perDim {
		if len(vs) > 64 {
			t.Fatalf("dim %d takes %d distinct values; expected a small quantized set", d, len(vs))
		}
	}
}

func TestLargeCampaignDeterministic(t *testing.T) {
	a := LargeCampaign(LargeCampaignConfig{Seed: 4, Samples: 500})
	b := LargeCampaign(LargeCampaignConfig{Seed: 4, Samples: 500})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if stats.SparseSqDist(a[i], b[i]) != 0 {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
	c := LargeCampaign(LargeCampaignConfig{Seed: 5, Samples: 500})
	same := 0
	for i := range a {
		if a[i].Dim == c[i].Dim && stats.SparseSqDist(a[i], c[i]) == 0 {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds generated identical batches")
	}
}
