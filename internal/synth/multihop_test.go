package synth

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// multihopTrace runs the benchmark scenario at the given worker count and
// returns the serialized trace.
func multihopTrace(t testing.TB, nodes, workers int, seconds float64) []byte {
	t.Helper()
	r, err := Multihop(MultihopConfig{
		Nodes: nodes, Seconds: seconds, Seed: 1, NodeWorkers: workers,
	})
	if err != nil {
		t.Fatalf("multihop(nodes=%d workers=%d): %v", nodes, workers, err)
	}
	var b bytes.Buffer
	if err := r.Trace.WriteBinary(&b); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b.Bytes()
}

// TestMultihopDeliversAcrossHops: the benchmark scenario must actually
// exercise multi-hop radio traffic — packets originated at the head of the
// chain reach nodes several hops away — and must engage the parallel
// scheduler when workers are enabled.
func TestMultihopDeliversAcrossHops(t *testing.T) {
	r, err := Multihop(MultihopConfig{Nodes: 12, Seconds: 2, Seed: 1, NodeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Net.Deliveries()) == 0 {
		t.Fatal("no radio deliveries; benchmark scenario is not exercising the medium")
	}
	sinkRx, err := r.RAM(11, "rxn")
	if err != nil {
		t.Fatal(err)
	}
	if sinkRx == 0 {
		t.Fatal("sink received nothing; traffic is not traversing the chain")
	}
	if r.Stats.ParallelSections == 0 {
		t.Fatal("no parallel sections ran; the scenario never left lockstep")
	}
	if r.Stats.StagedEvents == 0 {
		t.Fatal("no staged medium events; sections never overlapped radio submits")
	}
}

// TestMultihopParallelDifferential: the benchmark scenario's trace must be
// byte-identical between the sequential scheduler and parallel sections at
// every tested worker count, across chain lengths.
func TestMultihopParallelDifferential(t *testing.T) {
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, nodes := range []int{8, 12, 16} {
		nodes := nodes
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			seconds := 1.0
			if testing.Short() {
				seconds = 0.3
			}
			seq := multihopTrace(t, nodes, 1, seconds)
			for _, w := range counts {
				if par := multihopTrace(t, nodes, w, seconds); !bytes.Equal(seq, par) {
					t.Errorf("workers=%d: trace differs from sequential (%d vs %d bytes)",
						w, len(seq), len(par))
				}
			}
		})
	}
}

// TestParallelRandomTopologies is the deterministic many-node differential
// sweep: random generated scenarios (random topologies, fuzzers, radio
// beacons) must produce byte-identical traces sequential vs parallel at
// every tested worker count. FuzzParallelTrace extends the same check to
// fuzzed inputs.
func TestParallelRandomTopologies(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := Config{Seed: uint64(seed), ExactNodes: 8, Seconds: 0.5}
		seq, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sb bytes.Buffer
		if err := seq.Trace.WriteBinary(&sb); err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
			cfg.NodeWorkers = w
			par, err := Generate(cfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			var pb bytes.Buffer
			if err := par.Trace.WriteBinary(&pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Errorf("seed %d workers %d: trace differs (%d vs %d bytes)",
					seed, w, sb.Len(), pb.Len())
			}
		}
	}
}

// FuzzParallelTrace fuzzes the parallel scheduler's equivalence gate over
// many-node topologies: for any generation seed, node count, and worker
// count, the serialized trace must be byte-identical to the sequential run
// of the same scenario.
func FuzzParallelTrace(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(4))
	f.Add(uint64(7), uint8(12), uint8(2))
	f.Add(uint64(42), uint8(3), uint8(3))
	f.Add(uint64(1234), uint8(16), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, nodes, workers uint8) {
		n := int(nodes%16) + 2
		w := int(workers%8) + 2
		cfg := Config{Seed: seed, ExactNodes: n, Seconds: 0.3}
		seq, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb bytes.Buffer
		if err := seq.Trace.WriteBinary(&sb); err != nil {
			t.Fatal(err)
		}
		cfg.NodeWorkers = w
		par, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pb bytes.Buffer
		if err := par.Trace.WriteBinary(&pb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Fatalf("seed %d nodes %d workers %d: parallel trace differs (%d vs %d bytes)",
				seed, n, w, sb.Len(), pb.Len())
		}
	})
}

// BenchmarkRecordParallelNodes measures the record phase of the multi-hop
// benchmark scenario across worker counts. b.ReportMetric publishes the
// simulated-cycles-per-second rate so runs on different hardware compare.
func BenchmarkRecordParallelNodes(b *testing.B) {
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	const seconds = 2.0
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Multihop(MultihopConfig{
					Nodes: 12, Seconds: seconds, Seed: 1, NodeWorkers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				r.Release()
			}
			b.ReportMetric(seconds*1e6*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}
