package sentomist_test

import (
	"testing"

	"sentomist/internal/experiments"
)

// Allocation-profile thresholds for the streaming Case-I end-to-end op
// (five 10-second runs recorded, anatomized, featured, and mined via the
// campaign engine). The canonical measurement is in BENCH_PR3.json
// (4,511 allocs/op, ~2.94 MB/op); the thresholds carry ~40% headroom for
// runner variance. If a change regresses past them, either fix the
// allocation or consciously re-baseline both this file and
// BENCH_PR3.json.
const (
	maxStreamingAllocsPerOp = 6_500
	maxStreamingBytesPerOp  = 4_200_000
)

// TestStreamingAllocBudget guards the streaming pipeline's allocation
// profile in CI: the pooled, online path must not quietly regress back
// toward materialized-trace costs.
func TestStreamingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CaseICampaign(experiments.CaseISeedBase); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("streaming Case-I end to end: %d allocs/op, %d B/op over %d op(s)", allocs, bytes, res.N)
	if allocs > maxStreamingAllocsPerOp {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR3.json)", allocs, maxStreamingAllocsPerOp)
	}
	if bytes > maxStreamingBytesPerOp {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR3.json)", bytes, maxStreamingBytesPerOp)
	}
}
