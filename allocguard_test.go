package sentomist_test

import (
	"testing"

	"sentomist"
	"sentomist/internal/experiments"
	"sentomist/internal/stats"
	"sentomist/internal/svm"
	"sentomist/internal/synth"
)

// Allocation-profile thresholds for the streaming Case-I end-to-end op
// (five 10-second runs recorded, anatomized, featured, and mined via the
// campaign engine). The canonical measurement is in BENCH_PR3.json
// (4,511 allocs/op, ~2.94 MB/op); the thresholds carry ~40% headroom for
// runner variance. If a change regresses past them, either fix the
// allocation or consciously re-baseline both this file and
// BENCH_PR3.json.
const (
	maxStreamingAllocsPerOp = 6_500
	maxStreamingBytesPerOp  = 4_200_000
)

// TestStreamingAllocBudget guards the streaming pipeline's allocation
// profile in CI: the pooled, online path must not quietly regress back
// toward materialized-trace costs.
func TestStreamingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; CI guards allocations in a non-race step")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CaseICampaign(experiments.CaseISeedBase); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("streaming Case-I end to end: %d allocs/op, %d B/op over %d op(s)", allocs, bytes, res.N)
	if allocs > maxStreamingAllocsPerOp {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR3.json)", allocs, maxStreamingAllocsPerOp)
	}
	if bytes > maxStreamingBytesPerOp {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR3.json)", bytes, maxStreamingBytesPerOp)
	}
}

// Cached-training allocation thresholds: 1500 distinct counters trained
// through a 4 MiB kernel column cache. The dense Gram at this size is
// 8·1500² = 18 MB; the cached path's whole-training footprint (columns +
// solver state + model) measures ~4.6 MB (BENCH_PR4.json), and the ceiling
// carries headroom for runner variance while staying far under the dense
// matrix alone.
const (
	cachedTrainSamples   = 1500
	cachedTrainCacheMiB  = 4
	maxCachedTrainBytes  = 8_000_000
	maxCachedTrainAllocs = 6_000
)

// Online-ingest allocation thresholds: 1500 block-jittered counters
// streamed through the filter → scale-statistics → columnar-disk-spill path
// with refits disabled (the between-refit resident regime). The canonical
// measurement is ~4.15 MB/op and ~4,800 allocs/op (BENCH_PR7.json) — the
// traffic is dominated by the per-interval counter copies the ingest
// contract requires — and the ceilings carry ~40% headroom for runner
// variance.
const (
	onlineIngestSamples   = 1500
	onlineIngestDim       = 512
	onlineIngestBatches   = 16
	maxOnlineIngestBytes  = 6_500_000
	maxOnlineIngestAllocs = 7_000
)

// onlineGuardBatches builds the shared batch stream both online allocation
// guards ingest: block-jittered counters split evenly across batches.
// OnlineMiner.Add copies counters, so the same batches can be re-ingested
// every benchmark iteration.
func onlineGuardBatches() []sentomist.MineBatch {
	counters := synth.LargeCampaign(synth.LargeCampaignConfig{
		Seed: 11, Samples: onlineIngestSamples, Dim: onlineIngestDim,
		BlockJitter: true, AnomalyRate: -1,
	})
	per := (onlineIngestSamples + onlineIngestBatches - 1) / onlineIngestBatches
	var batches []sentomist.MineBatch
	for start := 0; start < onlineIngestSamples; start += per {
		end := start + per
		if end > onlineIngestSamples {
			end = onlineIngestSamples
		}
		b := sentomist.MineBatch{Run: len(batches) + 1}
		for i := start; i < end; i++ {
			b.Intervals = append(b.Intervals, sentomist.Interval{
				IRQ: 1, Seq: i, Node: 1, Complete: true, EndsWithTask: true,
			})
			b.Counters = append(b.Counters, counters[i])
		}
		batches = append(batches, b)
	}
	return batches
}

// TestOnlineIngestAllocBudget guards the online miner's ingest path: with
// intervals spilling to disk, allocation traffic must stay proportional to
// the counters ingested (copy + spill buffers), not creep toward holding the
// scaled training set resident between refits.
func TestOnlineIngestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; CI guards allocations in a non-race step")
	}
	batches := onlineGuardBatches()
	spillDir := t.TempDir()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := sentomist.NewOnlineMiner(sentomist.OnlineMineConfig{
				Config:   sentomist.MineConfig{IRQ: 1},
				SpillDir: spillDir,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range batches {
				if err := m.Add(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("online ingest (l=%d, disk spill): %d allocs/op, %d B/op over %d op(s)",
		onlineIngestSamples, allocs, bytes, res.N)
	if bytes > maxOnlineIngestBytes {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR7.json)", bytes, maxOnlineIngestBytes)
	}
	if allocs > maxOnlineIngestAllocs {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR7.json)", allocs, maxOnlineIngestAllocs)
	}
}

// Online-refit allocation thresholds: the ingest stream above re-mined with
// a refit every other batch (8 warm refits per op, l growing to 1500) and
// the scale bounds pinned so every refit after the first replays only the
// delta. The refit path reuses the resident scaled set, the solver's warm
// coefficient buffer, and the per-state bound scratch; what remains is the
// solve itself plus the delta block decode. The canonical measurement is
// ~24.3 MB/op and ~10,500 allocs/op (BENCH_PR10.json); the ceilings carry
// ~40% headroom for runner variance.
const (
	onlineRefitEvery     = 2
	maxOnlineRefitBytes  = 34_000_000
	maxOnlineRefitAllocs = 15_000
)

// TestOnlineRefitAllocBudget guards the warm delta-refit path: refitting
// every other batch must not allocate per-refit copies of the whole
// training set (resident samples, warm starts, and bound scratch are
// reused), only the delta decode and the solver's own working set.
func TestOnlineRefitAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; CI guards allocations in a non-race step")
	}
	batches := onlineGuardBatches()
	// Pin the scale bounds in the first batch — one sample at every
	// dimension's global maximum plus one empty sample — so refits after the
	// first see bitwise-stable bounds and take the delta-replay path.
	hi := make([]float64, onlineIngestDim)
	for _, b := range batches {
		for _, c := range b.Counters {
			for k, d := range c.Idx {
				if c.Val[k] > hi[d] {
					hi[d] = c.Val[k]
				}
			}
		}
	}
	full := stats.Sparse{Dim: onlineIngestDim}
	for d, v := range hi {
		if v > 0 {
			full.Idx = append(full.Idx, int32(d))
			full.Val = append(full.Val, v)
		}
	}
	pin := batches[0]
	batches[0] = sentomist.MineBatch{
		Run: pin.Run,
		Intervals: append([]sentomist.Interval{
			{IRQ: 1, Seq: onlineIngestSamples + 1, Node: 1, Complete: true, EndsWithTask: true},
			{IRQ: 1, Seq: onlineIngestSamples + 2, Node: 1, Complete: true, EndsWithTask: true},
		}, pin.Intervals...),
		Counters: append([]stats.Sparse{full, {Dim: onlineIngestDim}}, pin.Counters...),
	}
	spillDir := t.TempDir()
	var refits, deltas int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refits, deltas = 0, 0
			m, err := sentomist.NewOnlineMiner(sentomist.OnlineMineConfig{
				Config:     sentomist.MineConfig{IRQ: 1},
				SpillDir:   spillDir,
				RefitEvery: onlineRefitEvery,
				TopK:       10,
				OnRanking: func(r *sentomist.OnlineRanking) {
					refits++
					if r.Delta {
						deltas++
					}
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, batch := range batches {
				if err := m.Add(batch); err != nil {
					b.Fatal(err)
				}
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if refits == 0 || deltas != refits-1 {
		t.Fatalf("%d of %d refits were delta replays, want all but the first", deltas, refits)
	}
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("online delta refits (l=%d, refit every %d batches, %d refits/op): %d allocs/op, %d B/op over %d op(s)",
		onlineIngestSamples, onlineRefitEvery, refits, allocs, bytes, res.N)
	if bytes > maxOnlineRefitBytes {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR10.json)", bytes, maxOnlineRefitBytes)
	}
	if allocs > maxOnlineRefitAllocs {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR10.json)", allocs, maxOnlineRefitAllocs)
	}
}

// Speculative-emulation allocation thresholds: one 2-second, 12-node
// multihop record phase under optimistic sections with deep (512-quantum)
// windows. Snapshot buffers, segment lists, and the recorder's speculation
// buffers are pooled per sim and reused across sections, so the whole run
// measures ~6,600 allocs/op and ~1.5 MB/op — below the conservative
// engine's own profile at the same worker count (BENCH_PR8.json). The
// ceilings carry ~45% headroom for runner variance.
const (
	maxSpeculationAllocs = 10_000
	maxSpeculationBytes  = 2_400_000
)

// TestSpeculationAllocBudget guards the speculative engine's allocation
// profile: snapshots and staged-trace buffers must keep recycling through
// the per-sim pools, not allocate per section or (worse) per rollback.
func TestSpeculationAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; CI guards allocations in a non-race step")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := synth.Multihop(synth.MultihopConfig{
				Nodes: 12, Seconds: 2, Seed: 1, NodeWorkers: 4,
				Speculate: true, SpecDepth: 512,
			})
			if err != nil {
				b.Fatal(err)
			}
			if r.Stats.SpecSections == 0 {
				b.Fatal("speculation did not engage; the guard is not measuring the optimistic path")
			}
			r.Release()
		}
	})
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("speculative multihop record (12 nodes, 2 s, depth 512): %d allocs/op, %d B/op over %d op(s)",
		allocs, bytes, res.N)
	if allocs > maxSpeculationAllocs {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR8.json)", allocs, maxSpeculationAllocs)
	}
	if bytes > maxSpeculationBytes {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR8.json)", bytes, maxSpeculationBytes)
	}
}

// TestCachedTrainingAllocBudget guards the on-demand kernel cache's
// allocation profile: training at a fixed budget must stay bounded by the
// budget, not creep back toward materializing the l×l Gram.
func TestCachedTrainingAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; CI guards allocations in a non-race step")
	}
	samples := synth.LargeCampaign(synth.LargeCampaignConfig{
		Seed: 11, Samples: cachedTrainSamples, Dim: 512, Distinct: true,
	})
	cfg := svm.Config{Nu: 0.05, Gram: svm.GramCached, CacheBytes: cachedTrainCacheMiB << 20}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svm.TrainSparse(samples, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := res.AllocsPerOp()
	bytes := res.AllocedBytesPerOp()
	t.Logf("cached training (l=%d, %d MiB cache): %d allocs/op, %d B/op over %d op(s)",
		cachedTrainSamples, cachedTrainCacheMiB, allocs, bytes, res.N)
	if bytes > maxCachedTrainBytes {
		t.Errorf("B/op regressed: %d > %d (threshold; see BENCH_PR4.json)", bytes, maxCachedTrainBytes)
	}
	if allocs > maxCachedTrainAllocs {
		t.Errorf("allocs/op regressed: %d > %d (threshold; see BENCH_PR4.json)", allocs, maxCachedTrainAllocs)
	}
}
