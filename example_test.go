package sentomist_test

import (
	"fmt"
	"log"

	"sentomist"
)

// Example runs the paper's Case II (multi-hop forwarding with the
// busy-flag drop bug) and mines the relay's packet-arrival event type.
// Every run is deterministic, so the output is exact.
func Example() {
	run, err := sentomist.RunCaseII(sentomist.CaseIIConfig{Seconds: 20, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	drops, err := run.RAM(sentomist.CaseIIRelayID, "dropcnt")
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := sentomist.Mine(
		[]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}},
		sentomist.MineConfig{
			IRQ:    sentomist.IRQRadioRX,
			Nodes:  []int{sentomist.CaseIIRelayID},
			Labels: sentomist.LabelSeqOnly,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busy drops: %d\n", drops)
	hits := 0
	for _, s := range ranking.Top(3) {
		sym, err := sentomist.CaseIISymptom(run, s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		if sym {
			hits++
		}
	}
	fmt.Printf("drops in the top 3 ranks: %d of %d intervals mined\n", hits, len(ranking.Samples))
	// Output:
	// busy drops: 3
	// drops in the top 3 ranks: 3 of 254 intervals mined
}

// ExampleExtractIntervals anatomizes a trace without running a detector —
// the paper's Section V-A step on its own.
func ExampleExtractIntervals() {
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: 20, Seconds: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ivs, err := sentomist.ExtractIntervals(run.Trace)
	if err != nil {
		log.Fatal(err)
	}
	adc := 0
	for _, iv := range ivs {
		if iv.IRQ == sentomist.IRQADC && iv.Node == sentomist.CaseISensorID {
			adc++
		}
	}
	fmt.Printf("ADC event-handling intervals in 1 s at D = 20 ms: %d\n", adc)
	// Output:
	// ADC event-handling intervals in 1 s at D = 20 ms: 49
}

// ExampleDescribeInterval renders an interval's lifecycle window in the
// paper's notation.
func ExampleDescribeInterval() {
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: 20, Seconds: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ivs, err := sentomist.ExtractIntervals(run.Trace)
	if err != nil {
		log.Fatal(err)
	}
	for _, iv := range ivs {
		// The third ADC instance completes a triple and posts the send
		// task: the window shows the full event procedure.
		if iv.IRQ == sentomist.IRQADC && iv.Node == sentomist.CaseISensorID && iv.Seq == 3 {
			desc, err := sentomist.DescribeInterval(run.Trace, iv)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(desc)
			break
		}
	}
	// Output:
	// int(3), postTask(0), reti, runTask(0)
}
