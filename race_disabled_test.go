//go:build !race

package sentomist_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
