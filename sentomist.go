// Package sentomist reproduces "Sentomist: Unveiling Transient Sensor
// Network Bugs via Symptom Mining" (Zhou, Chen, Lyu, Liu — ICDCS 2010) as a
// Go library.
//
// Sentomist mines the execution trace of an event-driven wireless sensor
// network application for the symptoms of transient bugs. It anatomizes the
// trace into event-handling intervals (the lifetime of one event-procedure
// instance), features each interval as an instruction counter, scores every
// interval with a plug-in outlier detector (a one-class ν-SVM by default),
// and ranks the intervals most deserving of manual inspection first.
//
// The package bundles everything the paper's pipeline needs, built from
// scratch on the standard library:
//
//   - a cycle-accurate virtual microcontroller (SVM-8) with an assembler,
//     TinyOS-style interrupt/task runtime, hardware devices, and a CSMA
//     radio medium for multi-node simulation;
//   - the interval-identification algorithm over lifecycle sequences;
//   - the one-class SVM and alternative outlier detectors;
//   - the paper's three case-study applications, each with its transient
//     bug and a fixed variant.
//
// # Quick start
//
//	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
//		PeriodMS: 20, Seconds: 10, Seed: 1,
//	})
//	if err != nil { ... }
//	ranking, err := sentomist.Mine(
//		[]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}},
//		sentomist.MineConfig{IRQ: sentomist.IRQADC, Nodes: []int{sentomist.CaseISensorID}},
//	)
//	fmt.Print(ranking.Table(5, 2))
//
// Custom applications are written in SVM-8 assembly and wired into a
// Scenario; see NewScenario and the examples directory.
package sentomist

import (
	"io"

	"sentomist/internal/apps"
	"sentomist/internal/bundle"
	"sentomist/internal/campaign"
	"sentomist/internal/core"
	"sentomist/internal/isa"
	"sentomist/internal/lifecycle"
	"sentomist/internal/outlier"
	"sentomist/internal/sim"
	"sentomist/internal/svm"
	"sentomist/internal/trace"
)

// Interrupt numbers of the simulated node hardware, used to select which
// event type to mine.
const (
	IRQTimer0  = 1 // data-report / sampling timer
	IRQTimer1  = 2 // auxiliary timer (heartbeat protocol)
	IRQADC     = 3 // ADC conversion complete (sensor reading ready)
	IRQRadioRX = 4 // frame received (the paper's SPI interrupt)
	IRQTxDone  = 5 // radio send completed
)

// Core pipeline types.
type (
	// Trace is a recorded testing run: per-node lifecycle sequences
	// with instruction-count deltas.
	Trace = trace.Trace
	// Interval is one event-handling interval (paper Definition 2).
	Interval = lifecycle.Interval
	// RunInput is one testing run handed to Mine.
	RunInput = core.RunInput
	// MineConfig parameterizes the mining pipeline.
	MineConfig = core.Config
	// Ranking is the pipeline output: intervals ascending by score.
	Ranking = core.Ranking
	// Sample is one scored interval within a Ranking.
	Sample = core.Sample
	// LabelStyle selects how rankings label intervals.
	LabelStyle = core.LabelStyle
	// Detector is the plug-in outlier detection interface.
	Detector = outlier.Detector
	// Kernel is an SVM kernel function.
	Kernel = svm.Kernel
)

// Label styles for rendering rankings (paper Figure 5's three forms).
const (
	LabelRunSeq  = core.LabelRunSeq
	LabelSeqOnly = core.LabelSeqOnly
	LabelNodeSeq = core.LabelNodeSeq
)

// Feature kinds for MineConfig.Feature.
const (
	FeatureCounter    = core.FeatureCounter
	FeatureFuncCount  = core.FeatureFuncCount
	FeatureDuration   = core.FeatureDuration
	FeatureStackDepth = core.FeatureStackDepth
)

// Mine runs the Sentomist pipeline (anatomize → feature → detect → rank)
// over one or more testing runs.
func Mine(runs []RunInput, cfg MineConfig) (*Ranking, error) {
	return core.Mine(runs, cfg)
}

// Streaming pipeline (online anatomize + feature during recording).
type (
	// StreamSink receives lifecycle markers as the recorder emits them;
	// lifecycle.Streamer is the online anatomizer implementation. Wire
	// one into NodeSpec.Stream (or a case config's Stream map) to
	// feature a node without materializing its marker trace.
	StreamSink = trace.StreamSink
	// Streamer is the online anatomizer: it advances the interval
	// pushdown automaton on every marker and accumulates each
	// interval's instruction counter in place.
	Streamer = lifecycle.Streamer
	// CampaignConfig selects what a streamed campaign mines and how
	// wide it fans out.
	CampaignConfig = campaign.Config
	// CampaignAttach creates the online anatomizer for one monitored
	// node inside a CampaignRun.
	CampaignAttach = campaign.Attach
	// CampaignRun executes one testing run of a campaign.
	CampaignRun = campaign.RunFunc
	// MineBatch is one run's streamed intervals and counters.
	MineBatch = core.Batch
)

// NewStreamer creates an online anatomizer for nodeID; a nil pool
// allocates counter scratch unpooled.
func NewStreamer(nodeID int, pool *lifecycle.ScratchPool) *Streamer {
	return lifecycle.NewStreamer(nodeID, pool)
}

// MineCampaign fans the runs over a bounded worker pool, featuring each
// run online through attached Streamers, and ranks the streamed batches.
// The ranking is bit-identical to materializing every trace and calling
// Mine.
func MineCampaign(cfg CampaignConfig, runs []CampaignRun) (*Ranking, error) {
	return campaign.Mine(cfg, runs)
}

// MineCampaignAll is MineCampaign for multi-IRQ online campaigns: every
// event type named by cfg.IRQ and cfg.Online.IRQs is mined over the shared
// run stream, returning one final ranking per type — each bit-identical to
// the one-shot path with that type as the config IRQ. Requires
// CampaignConfig.Online.
func MineCampaignAll(cfg CampaignConfig, runs []CampaignRun) (map[int]*Ranking, error) {
	return campaign.MineAll(cfg, runs)
}

// MineBatches ranks pre-featured interval batches — the detect → rank
// tail of the pipeline, for batches produced by Streamers outside
// MineCampaign.
func MineBatches(batches []MineBatch, cfg MineConfig) (*Ranking, error) {
	return core.MineBatches(batches, cfg)
}

// Online incremental mining (rank-as-you-go).
type (
	// OnlineMiner ingests batches as runs finish, refits the one-class
	// SVM periodically with warm starts, publishes streaming top-K
	// rankings, and finalizes to a ranking bit-identical to one-shot
	// MineBatches over the same batches.
	OnlineMiner = core.OnlineMiner
	// OnlineMineConfig parameterizes an OnlineMiner (refit cadence,
	// top-K bound, columnar spill directory, cold-refit baseline).
	OnlineMineConfig = core.OnlineConfig
	// OnlineRanking is one intermediate refit's top-K output with its
	// solver provenance (warm start, cache reuse, iterations).
	OnlineRanking = core.OnlineRanking
	// CampaignOnline switches MineCampaign to the streaming-ingest path;
	// set it as CampaignConfig.Online.
	CampaignOnline = campaign.OnlineOptions
)

// NewOnlineMiner opens an online miner (and its spill store, when
// configured).
func NewOnlineMiner(cfg OnlineMineConfig) (*OnlineMiner, error) {
	return core.NewOnlineMiner(cfg)
}

// ExtractBatches converts recorded runs into the batch stream OnlineMiner
// and MineBatches consume, visiting (run, node, interval) in exactly the
// order Mine does.
func ExtractBatches(runs []RunInput, cfg MineConfig) ([]MineBatch, error) {
	return core.ExtractBatches(runs, cfg)
}

// ExtractBatchesFor is ExtractBatches over a set of event types — the
// stream a multi-IRQ OnlineMiner (OnlineMineConfig.IRQs) ingests.
func ExtractBatchesFor(runs []RunInput, cfg MineConfig, irqs ...int) ([]MineBatch, error) {
	return core.ExtractBatchesFor(runs, cfg, irqs...)
}

// SVMDetector is the paper's default detector with every training knob
// exposed: ν, kernel, Gram-build parallelism, the on-demand kernel column
// cache budget (CacheBytes — bit-identical scores at any budget), and the
// SMO shrinking heuristic for large campaigns.
type SVMDetector = outlier.OneClassSVM

// OneClassSVM returns the paper's default detector with the given ν
// (fraction of samples treated as outliers; 0 selects 0.05). A nil kernel
// selects RBF with gamma = 1/dim. Use SVMDetector directly to set the
// campaign-scale knobs (cache budget, shrinking).
func OneClassSVM(nu float64, kernel Kernel) Detector {
	return SVMDetector{Nu: nu, Kernel: kernel}
}

// PCADetector scores by reconstruction error outside the principal
// subspace capturing varFraction of the variance (0 selects 0.95).
func PCADetector(varFraction float64) Detector {
	return outlier.PCA{VarFraction: varFraction}
}

// KNNDetector scores by distance to the k-th nearest neighbour (0 selects
// k = 5).
func KNNDetector(k int) Detector {
	return outlier.KNN{K: k}
}

// MahalanobisDetector scores by diagonal Mahalanobis distance from the
// batch mean.
func MahalanobisDetector() Detector {
	return outlier.Mahalanobis{}
}

// KernelPCADetector scores by reconstruction error in kernel feature space
// (nil kernel selects RBF with gamma = 1/dim; components 0 selects 4).
func KernelPCADetector(kernel Kernel, components int) Detector {
	return outlier.KernelPCA{Kernel: kernel, Components: components}
}

// RBFKernel returns the Gaussian kernel exp(-gamma ‖a-b‖²).
func RBFKernel(gamma float64) Kernel { return svm.RBF{Gamma: gamma} }

// LinearKernel returns the inner-product kernel.
func LinearKernel() Kernel { return svm.Linear{} }

// Scenario building (custom applications).
type (
	// Scenario wires user-written SVM-8 programs into a multi-node
	// simulation.
	Scenario = apps.Scenario
	// NodeSpec describes one node of a Scenario.
	NodeSpec = apps.NodeSpec
	// Run is a finished simulation: trace, programs, network, nodes.
	Run = apps.Run
	// SimStats are the recording scheduler's per-run counters (rounds,
	// jumps, parallel sections); Run.Stats and Bundle.Stats carry them.
	SimStats = sim.Stats
)

// NewScenario creates an empty scenario whose randomness derives from seed.
func NewScenario(seed uint64) *Scenario { return apps.NewScenario(seed) }

// Case studies (the paper's Section VI).
type (
	// CaseIConfig configures the data-pollution study (paper §VI-B).
	CaseIConfig = apps.OscConfig
	// CaseIIConfig configures the packet-loss study (paper §VI-C).
	CaseIIConfig = apps.ForwarderConfig
	// CaseIIIConfig configures the CTP-hang study (paper §VI-D).
	CaseIIIConfig = apps.CTPConfig
)

// Node IDs of the case-study topologies.
const (
	CaseISinkID    = apps.OscSinkID
	CaseISensorID  = apps.OscSensorID
	CaseIISinkID   = apps.FwdSinkID
	CaseIIRelayID  = apps.FwdRelayID
	CaseIISourceID = apps.FwdSourceID
	CaseIIIRootID  = apps.CTPRootID
)

// CaseIIISources returns the monitored source nodes of Case III.
func CaseIIISources() []int {
	return append([]int(nil), apps.CTPSources...)
}

// RunCaseI executes one Case-I testing run (single-hop collection with the
// Figure-2 data-pollution race).
func RunCaseI(cfg CaseIConfig) (*Run, error) { return apps.RunOscilloscope(cfg) }

// RunCaseII executes one Case-II testing run (multi-hop forwarding with
// the busy-flag active drop).
func RunCaseII(cfg CaseIIConfig) (*Run, error) { return apps.RunForwarder(cfg) }

// RunCaseIII executes one Case-III testing run (CTP + heartbeat with the
// unhandled send failure).
func RunCaseIII(cfg CaseIIIConfig) (*Run, error) { return apps.RunCTPHeartbeat(cfg) }

// CaseISymptom is the Case-I ground-truth oracle: the interval shows the
// Figure-2 data-pollution race. Experiments use it to confirm top-ranked
// intervals, standing in for the paper's manual inspection. Oracles error
// when the question is malformed (no trace or binary for the interval's
// node, or a missing oracle label) rather than reading as symptom-absent.
func CaseISymptom(run *Run, iv Interval) (bool, error) { return apps.CaseISymptom(run, iv) }

// CaseIISymptom is the Case-II oracle: the interval took the busy-flag
// active-drop path.
func CaseIISymptom(run *Run, iv Interval) (bool, error) { return apps.CaseIISymptom(run, iv) }

// CaseIIITrigger is the Case-III oracle for the FAIL-trigger instance.
func CaseIIITrigger(run *Run, iv Interval) (bool, error) { return apps.CaseIIITrigger(run, iv) }

// CaseIIISymptom is the Case-III oracle for any hang symptom (the trigger
// or a post-hang skipped report).
func CaseIIISymptom(run *Run, iv Interval) (bool, error) { return apps.CaseIIISymptom(run, iv) }

// LoadTrace reads a trace saved by SaveTrace (binary, or JSON for paths
// ending in ".json").
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// SaveTrace writes a trace to path (binary, or JSON for ".json" paths).
func SaveTrace(t *Trace, path string) error { return t.SaveFile(path) }

// ExtractIntervals anatomizes a trace into event-handling intervals without
// running a detector — the paper's Section V-A step on its own.
func ExtractIntervals(t *Trace) ([]Interval, error) {
	return lifecycle.ExtractTrace(t)
}

// Program is a linked SVM-8 binary (code image, vectors, tasks, symbols).
type Program = isa.Program

// SymbolCount is one row of an interval inspection.
type SymbolCount = core.SymbolCount

// SymbolCounts aggregates an interval's instruction counter by program
// symbol, highest count first — the first thing to look at when manually
// inspecting a top-ranked interval.
func SymbolCounts(t *Trace, prog *Program, iv Interval) ([]SymbolCount, error) {
	return core.SymbolCounts(t, prog, iv)
}

// DescribeInterval renders an interval's lifecycle item window in the
// paper's notation ("int(3), postTask(0), reti, int(3), reti, runTask(0)").
func DescribeInterval(t *Trace, iv Interval) (string, error) {
	return core.DescribeInterval(t, iv)
}

// Bug localization (the paper's stated future work, Section VII).
type (
	// LocalizeConfig parameterizes Localize.
	LocalizeConfig = core.LocalizeConfig
	// LineSuspicion is one localized code location.
	LineSuspicion = core.LineSuspicion
)

// Localize correlates a ranking's suspicious intervals with program
// instructions, returning the code locations most implicated in the
// symptom — the paper's symptom-to-source extension.
func Localize(runs []RunInput, ranking *Ranking, prog *Program, cfg LocalizeConfig) ([]LineSuspicion, error) {
	return core.Localize(runs, ranking, prog, cfg)
}

// LocalizeReport renders suspicions as a table.
func LocalizeReport(suspicions []LineSuspicion) string {
	return core.LocalizeReport(suspicions)
}

// AnnotatedListing renders the instructions an interval executed as an
// annotated disassembly with per-instruction execution counts — the
// artifact a developer reads when manually inspecting a ranked interval.
func AnnotatedListing(t *Trace, prog *Program, iv Interval) (string, error) {
	return core.AnnotatedListing(t, prog, iv)
}

// Bundle is a persisted testing run: the trace plus every node's binary
// and variable table, enabling fully offline mining and inspection.
type Bundle = bundle.Bundle

// SaveBundle persists a finished run to path.
func SaveBundle(run *Run, path string) error {
	b := &Bundle{Trace: run.Trace, Programs: run.Programs, Vars: run.Vars, Stats: run.Stats}
	return b.SaveFile(path)
}

// LoadBundle reads a bundle saved by SaveBundle.
func LoadBundle(path string) (*Bundle, error) { return bundle.LoadFile(path) }

// HTMLConfig parameterizes HTMLReport.
type HTMLConfig = core.HTMLConfig

// HTMLReport renders a ranking as a self-contained HTML page: the full
// suspicion table, detailed inspections of the top intervals, and the
// symptom-to-source localization.
func HTMLReport(w io.Writer, runs []RunInput, ranking *Ranking, prog *Program, cfg HTMLConfig) error {
	return core.HTMLReport(w, runs, ranking, prog, cfg)
}
