// Unhandled failure (the paper's Case III, Section VI-D): nine nodes run a
// CTP-style collection protocol alongside a heartbeat protocol. When a
// report submission is rejected because the heartbeat occupies the radio,
// the collection path never clears its busy flag and silently hangs. The
// example mines the report-timer event type across the four source nodes,
// reproducing the shape of Figure 5(c), then shows the hang in the delivery
// timeline.
//
//	go run ./examples/ctphang
package main

import (
	"fmt"
	"log"

	"sentomist"
)

func main() {
	run, err := sentomist.RunCaseIII(sentomist.CaseIIIConfig{
		Seconds: 15,
		Seed:    20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-node protocol state after 15 s:")
	for id := 1; id <= 8; id++ {
		sent, _ := run.RAM(id, "sentcnt")
		fails, _ := run.RAM(id, "failcnt")
		skips, _ := run.RAM(id, "skipcnt")
		hung := ""
		if fails > 0 {
			hung = "  <- collection hung after an unhandled send-FAIL"
		}
		fmt.Printf("  node %d: %2d reports sent, %d FAILs, %2d skipped%s\n", id, sent, fails, skips, hung)
	}

	ranking, err := sentomist.Mine(
		[]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}},
		sentomist.MineConfig{
			IRQ:    sentomist.IRQTimer0,
			Nodes:  sentomist.CaseIIISources(),
			Labels: sentomist.LabelNodeSeq,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmined %d report-timer intervals across the sources (Figure 5(c) shape):\n\n",
		len(ranking.Samples))
	fmt.Print(ranking.Table(6, 2))

	fmt.Println("\noracle check of the top ranks:")
	for i, s := range ranking.Top(5) {
		trig, err := sentomist.CaseIIITrigger(run, s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		sym, err := sentomist.CaseIIISymptom(run, s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		kind := "normal"
		if trig {
			kind = "FAIL TRIGGER (the unhandled failure)"
		} else if sym {
			kind = "post-hang skip (collection wedged)"
		}
		fmt.Printf("  rank %d: %-8s -> %s\n", i+1, s.Label(sentomist.LabelNodeSeq), kind)
	}

	// Show the hang from the sink's point of view: deliveries from the
	// hung node's origin stop after the failure.
	trigRank := ranking.RankOf(func(s sentomist.Sample) bool {
		trig, err := sentomist.CaseIIITrigger(run, s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		return trig
	})
	if trigRank == 0 {
		fmt.Println("\nno FAIL trigger in this run")
		return
	}
	trig := ranking.Samples[trigRank-1]
	origin := trig.Interval.Node
	var before, after int
	for _, d := range run.Net.Deliveries() {
		if len(d.Payload) == 0 || int(d.Payload[0]) != origin || len(d.Payload) >= 8 {
			continue
		}
		if d.Cycle < trig.Interval.StartCycle {
			before++
		} else {
			after++
		}
	}
	fmt.Printf("\nreadings from node %d seen on the air: %d before the FAIL, %d after —\n",
		origin, before, after)
	fmt.Println("the node still heartbeats (it looks alive) but reports nothing: the")
	fmt.Println("paper's \"WSN stops data reporting\" failure, found at rank", trigRank, "of",
		len(ranking.Samples))
}
