// Data pollution (the paper's Case I, Section VI-B): five testing runs of
// a single-hop collection app with sampling periods D = 20..100 ms are
// pooled and mined together, reproducing the shape of Figure 5(a). The
// example then inspects the top-ranked interval the way a developer would:
// its lifecycle window and its per-function instruction counts, which show
// the ADC event procedure executing twice inside one interval.
//
//	go run ./examples/datapollution
package main

import (
	"fmt"
	"log"

	"sentomist"
)

func main() {
	var (
		inputs []sentomist.RunInput
		runs   []*sentomist.Run
	)
	for i, d := range []int{20, 40, 60, 80, 100} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
			PeriodMS: d,
			Seconds:  10,
			Seed:     uint64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("testing run %d: D = %3d ms -> %3d packets delivered\n",
			i+1, d, len(run.Net.Deliveries()))
		runs = append(runs, run)
		inputs = append(inputs, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}

	ranking, err := sentomist.Mine(inputs, sentomist.MineConfig{
		IRQ:    sentomist.IRQADC,
		Nodes:  []int{sentomist.CaseISensorID},
		Labels: sentomist.LabelRunSeq,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npooled %d ADC intervals across the five runs (Figure 5(a) shape):\n\n",
		len(ranking.Samples))
	fmt.Print(ranking.Table(6, 2))

	// Inspect rank 1. The polluted interval contains a second int(3)
	// between postTask(0) and runTask(0): the fourth reading arrived
	// before the send task ran, overwriting packet[0].
	top := ranking.Samples[0]
	run := runs[top.Run-1]
	desc, err := sentomist.DescribeInterval(run.Trace, top.Interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrank-1 interval %s (%d µs):\n  %s\n",
		top.Label(sentomist.LabelRunSeq), top.Interval.Duration(), desc)

	counts, err := sentomist.SymbolCounts(run.Trace, run.Program(top.Interval.Node), top.Interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-function instruction counts inside the window:")
	for _, sc := range counts {
		fmt.Printf("  %-14s %6d\n", sc.Symbol, sc.Count)
	}
	fmt.Println("\nadc_isr executing twice within one interval is the Figure-2 race:")
	fmt.Println("the fourth reading polluted packet[0] before prepareAndSendPacket ran.")

	// Cross-check with the ground-truth oracle (the race interleaving
	// the paper describes): every top-ranked interval really contains
	// it. In the fixed variant the same interleaving still occurs — the
	// fourth interrupt cannot be prevented — but the send task reads a
	// snapshot taken before the post, so the packet can no longer be
	// polluted. Sentomist still surfaces those intervals (they are
	// genuinely rare interleavings); inspection then shows them benign,
	// which is exactly the manual confirmation step of the paper.
	pollutions := 0
	for _, s := range ranking.Samples {
		sym, err := sentomist.CaseISymptom(runs[s.Run-1], s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		if sym {
			pollutions++
		}
	}
	fixedRun, err := sentomist.RunCaseI(sentomist.CaseIConfig{
		PeriodMS: 20, Seconds: 10, Seed: 100, Fixed: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fixedIvs, err := sentomist.ExtractIntervals(fixedRun.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fixedPollutions := 0
	for _, iv := range fixedIvs {
		sym, err := sentomist.CaseISymptom(fixedRun, iv)
		if err != nil {
			log.Fatal(err)
		}
		if sym {
			fixedPollutions++
		}
	}
	fmt.Printf("\nrace interleavings: %d in the buggy runs (all polluting, all top-ranked);\n"+
		"%d in the fixed variant (benign: the send task reads the pre-post snapshot)\n",
		pollutions, fixedPollutions)
}
