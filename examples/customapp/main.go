// Custom application walkthrough: write your own SVM-8 program, stress it
// with the random-interrupt test driver (Regehr-style), and let Sentomist
// find a bug nobody planted in the case studies.
//
// The app digests an event counter in a periodic task. The digest task
// stashes its working value in a scratch variable — which the motion
// interrupt handler also writes. When a motion event lands inside the
// digest window (a rare interleaving under fuzzing), the scratch is
// clobbered and the digest takes its corruption-recovery path: a transient
// bug in exactly the paper's sense.
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"sentomist"
)

const appSource = `
.var evcount
.var scratch
.var digests
.var corruptions

.vector 1, tick_isr
.vector 2, motion_isr
.task 0, digest_task
.entry boot

boot:
	ldi  r0, 0x88           ; digest timer: 5000 cycles = 5 ms
	out  T0_LO, r0
	ldi  r0, 0x13
	out  T0_HI, r0
	ldi  r0, 1
	out  T0_CTRL, r0
	sei
	osrun

tick_isr:
	post 0
	reti

; Motion events arrive from the fuzzer at random times.
motion_isr:
	push r0
	lds  r0, evcount
	inc  r0
	sts  evcount, r0
	sts  scratch, r0        ; BUG: clobbers the digest task's scratch
	pop  r0
	reti

; Digest the counter. The stash/verify pair is only correct if nothing
; touches scratch in between — which a motion interrupt occasionally does.
digest_task:
	push r0
	push r1
	lds  r0, evcount
	sts  scratch, r0        ; stash the value being digested
	ldi  r1, 40             ; ... a long computation window ...
dg_spin:
	dec  r1
	brne dg_spin
	lds  r1, scratch        ; reload: must still be our stash
	cp   r1, r0
	brne dg_corrupted
	lds  r0, digests
	inc  r0
	sts  digests, r0
	jmp  dg_out
dg_corrupted:
	lds  r0, corruptions    ; recovery path: discard the digest
	inc  r0
	sts  corruptions, r0
dg_out:
	pop  r1
	pop  r0
	ret
`

func main() {
	s := sentomist.NewScenario(99)
	err := s.AddNode(sentomist.NodeSpec{
		ID:     1,
		Timer0: true,
		Source: appSource,
		// Random motion events, 2-40 ms apart: the hostile
		// interleavings periodic testing would never produce.
		FuzzIRQs:   []int{sentomist.IRQTimer1},
		FuzzMinGap: 2_000,
		FuzzMaxGap: 40_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := s.Run(10)
	if err != nil {
		log.Fatal(err)
	}
	digests, _ := run.RAM(1, "digests")
	corruptions, _ := run.RAM(1, "corruptions")
	fmt.Printf("10 s under interrupt fuzzing: %d clean digests, %d corrupted\n\n", digests, corruptions)

	inputs := []sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}}
	ranking, err := sentomist.Mine(inputs, sentomist.MineConfig{
		IRQ:    sentomist.IRQTimer0, // the digest event procedure
		Nodes:  []int{1},
		Labels: sentomist.LabelSeqOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d digest intervals:\n\n%s\n", len(ranking.Samples), ranking.Table(5, 2))

	top := ranking.Samples[0]
	desc, err := sentomist.DescribeInterval(run.Trace, top.Interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank-1 window: %s\n", desc)
	fmt.Println("(a motion interrupt inside the digest window — the race trigger)")

	suspicions, err := sentomist.Localize(inputs, ranking, run.Program(1), sentomist.LocalizeConfig{MaxResults: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsymptom-to-source localization:\n%s", sentomist.LocalizeReport(suspicions))
	fmt.Println("\ndg_corrupted and motion_isr point straight at the shared-scratch race.")
}
