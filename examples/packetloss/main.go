// Packet loss (the paper's Case II, Section VI-C): a three-node forwarding
// chain where the relay actively drops a received packet whenever its MAC
// busy flag is still set from forwarding the previous one. The drops hide
// among ordinary wireless losses; mining the relay's packet-arrival event
// procedure surfaces exactly the dropped-packet intervals, reproducing the
// shape of Figure 5(b).
//
//	go run ./examples/packetloss
package main

import (
	"fmt"
	"log"

	"sentomist"
)

func main() {
	run, err := sentomist.RunCaseII(sentomist.CaseIIConfig{
		Seconds: 20,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	forwarded, _ := run.RAM(sentomist.CaseIIRelayID, "fwdcnt")
	dropped, _ := run.RAM(sentomist.CaseIIRelayID, "dropcnt")
	fmt.Printf("relay received %d packets and actively dropped %d of them\n", forwarded, dropped)
	fmt.Printf("(plus ordinary wireless losses, which look identical to the sink: %d deliveries)\n\n",
		len(run.Net.Deliveries()))

	ranking, err := sentomist.Mine(
		[]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}},
		sentomist.MineConfig{
			IRQ:    sentomist.IRQRadioRX,
			Nodes:  []int{sentomist.CaseIIRelayID},
			Labels: sentomist.LabelSeqOnly,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d packet-arrival intervals at the relay (Figure 5(b) shape):\n\n",
		len(ranking.Samples))
	fmt.Print(ranking.Table(6, 2))

	// Confirm the top ranks with the ground-truth oracle and inspect the
	// winner: its window shows the forward task running, and its
	// per-function counts include the fwd_drop path the normal
	// intervals never touch.
	fmt.Println("\noracle check of the top ranks:")
	for i, s := range ranking.Top(int(dropped) + 2) {
		sym, err := sentomist.CaseIISymptom(run, s.Interval)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d: packet %3s -> busy-drop symptom: %v\n",
			i+1, s.Label(sentomist.LabelSeqOnly), sym)
	}

	top := ranking.Samples[0]
	counts, err := sentomist.SymbolCounts(run.Trace, run.Program(top.Interval.Node), top.Interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-function instruction counts of the rank-1 interval:")
	for _, sc := range counts {
		fmt.Printf("  %-12s %6d\n", sc.Symbol, sc.Count)
	}
	fmt.Println("\nthe fwd_drop rows betray the bug: AMSend.send was rejected while busy,")
	fmt.Println("and the packet was discarded instead of being queued.")
}
