// Quickstart: run one buggy WSN application in the simulator, mine its
// trace for transient-bug symptoms, and print the suspicion ranking.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sentomist"
)

func main() {
	// Run the paper's Case-I application for 10 simulated seconds:
	// a sensor node samples its ADC every 20 ms and ships every three
	// readings to a sink. Its ADC event procedure contains the
	// Figure-2 data race.
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
		PeriodMS: 20,
		Seconds:  10,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 10 s: %d packets reached the sink\n\n", len(run.Net.Deliveries()))

	// Mine the ADC event type on the sensor node: anatomize the trace
	// into event-handling intervals, feature each as an instruction
	// counter, and rank by one-class SVM score (most suspicious first).
	ranking, err := sentomist.Mine(
		[]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}},
		sentomist.MineConfig{
			IRQ:    sentomist.IRQADC,
			Nodes:  []int{sentomist.CaseISensorID},
			Labels: sentomist.LabelSeqOnly,
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d ADC event-handling intervals; inspect these first:\n\n",
		len(ranking.Samples))
	fmt.Print(ranking.Table(5, 2))

	// "Manually inspect" the most suspicious interval: its lifecycle
	// window shows the bug pattern the paper describes — a second ADC
	// interrupt lands between the post of the send task and its run,
	// polluting the packet buffer.
	top := ranking.Samples[0]
	desc, err := sentomist.DescribeInterval(run.Trace, top.Interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop interval %s spans %d µs:\n  %s\n",
		top.Label(sentomist.LabelSeqOnly), top.Interval.Duration(), desc)
}
