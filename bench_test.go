package sentomist_test

// The benchmark harness regenerates every evaluation artifact of the paper
// (see DESIGN.md's per-experiment index) through internal/experiments — the
// same code path behind cmd/experiments and the numbers in EXPERIMENTS.md.
// Each benchmark runs the full pipeline (simulate, anatomize, feature,
// detect, rank) and reports the paper-relevant quantities as custom
// metrics:
//
//	rank_first_symptom   rank of the first true-bug interval (1 = best)
//	symptomatic          number of ground-truth symptomatic intervals
//	samples              intervals mined
//	top_k_hits           symptomatic intervals inside the top k
//
// Run with: go test -bench=. -benchmem
//
// The ranking tables themselves (the shape of Figure 5) print once per
// benchmark.

import (
	"fmt"
	"sync"
	"testing"

	"sentomist"
	"sentomist/internal/experiments"
	"sentomist/internal/feature"
	"sentomist/internal/lifecycle"
	"sentomist/internal/outlier"
	"sentomist/internal/stats"
	"sentomist/internal/svm"
	"sentomist/internal/synth"
)

var printOnce sync.Map

func printCaseTable(res *experiments.CaseResult) {
	if _, loaded := printOnce.LoadOrStore(res.Name, true); loaded {
		return
	}
	fmt.Printf("\n--- %s (%d samples) ---\n%s\n", res.Name, res.Samples, res.Table)
}

func reportCase(b *testing.B, res *experiments.CaseResult) {
	b.Helper()
	b.ReportMetric(float64(res.Samples), "samples")
	b.ReportMetric(float64(res.Symptomatic), "symptomatic")
	b.ReportMetric(float64(res.FirstSymptomRank), "rank_first_symptom")
	b.ReportMetric(float64(res.TopKHits), "top_k_hits")
	printCaseTable(res)
}

// BenchmarkFig5aCaseI — E1: the Figure 5(a) ranking. Five pooled runs
// (D = 20..100 ms, 10 s each); the data-pollution intervals must hold the
// top ranks, all from the D = 20 ms run, as in the paper.
func BenchmarkFig5aCaseI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseI(experiments.CaseISeedBase)
		if err != nil {
			b.Fatal(err)
		}
		reportCase(b, res)
	}
}

// BenchmarkFig5bCaseII — E2: the Figure 5(b) ranking. One 20-second
// three-node forwarding run; the busy-drop intervals (the paper found
// exactly 3 of 195) must occupy the top ranks.
func BenchmarkFig5bCaseII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseII(experiments.CaseIISeed)
		if err != nil {
			b.Fatal(err)
		}
		reportCase(b, res)
	}
}

// BenchmarkFig5cCaseIII — E3: the Figure 5(c) ranking. One 15-second
// nine-node run; the unhandled-FAIL interval (the paper's [8, 20], rank 4)
// must land within the top 5.
func BenchmarkFig5cCaseIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CaseIII(experiments.CaseIIISeed)
		if err != nil {
			b.Fatal(err)
		}
		reportCase(b, res)
		b.ReportMetric(float64(res.TriggerRank), "rank_fail_trigger")
	}
}

// BenchmarkTraceVolume — E4: trace volume at D = 20 ms. The paper reports
// "tens of megabytes" of function-level logs per run; Sentomist's
// anatomized trace is orders of magnitude smaller and collapses to a few
// hundred intervals to inspect.
func BenchmarkTraceVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vol, err := experiments.TraceVolume()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(vol.TraceBytes), "trace_bytes")
		b.ReportMetric(float64(vol.Markers), "markers")
		b.ReportMetric(float64(vol.Intervals), "intervals")
	}
}

// BenchmarkInspectionEffort — E5: human-effort saving. Compares the number
// of intervals inspected until the first true symptom under (a) Sentomist's
// ranking, (b) chronological scanning, (c) expected uniform-random
// scanning — the brute-force baselines of the paper's Section VI.
func BenchmarkInspectionEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eff, err := experiments.InspectionEffort(experiments.CaseIISeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(eff.Sentomist), "sentomist_inspections")
		b.ReportMetric(float64(eff.Chronological), "chronological_inspections")
		b.ReportMetric(eff.RandomExp, "random_inspections")
	}
}

// BenchmarkDetectorAblation — A1: the plug-in comparison the paper's
// Section VI-E anticipates: one-class SVM vs PCA vs k-NN vs diagonal
// Mahalanobis vs kernel PCA vs a random ranker, by the rank of the first
// true symptom on Case II.
func BenchmarkDetectorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DetectorAblation(experiments.CaseIISeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.FirstSymptomRank), "rank_"+metricName(r.Name))
		}
	}
}

// BenchmarkFeatureAblation — A2: Definition 4's instruction counter vs the
// cruder function-call counts and duration-only features. Case II is the
// discriminating workload: the busy-drop differs from a normal forward by
// only a handful of instructions on a distinct path, so duration-level
// features cannot see it.
func BenchmarkFeatureAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FeatureAblation(experiments.CaseIISeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.FirstSymptomRank), "rank_"+metricName(r.Name))
		}
	}
}

// BenchmarkKernelAblation — A3: the paper argues the nonlinear boundary is
// critical (Section V-C2); RBF vs linear on Case I run 1.
func BenchmarkKernelAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.KernelAblation(experiments.CaseISeedBase)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.FirstSymptomRank), "rank_"+metricName(r.Name))
		}
	}
}

// BenchmarkDustminerBaseline — A4: the Dustminer-style discriminative
// n-gram miner, given ground-truth labels (the manual effort Sentomist
// removes). On Case I the pollution IS a lifecycle pattern and the miner
// scores 1.0; on Case II the bug is invisible at item granularity and the
// top score is 0.
func BenchmarkDustminerBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DustminerBaseline()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Extra, "score_"+metricName(r.Name))
		}
	}
}

// BenchmarkSequentialSimAblation — A5: the paper's Section VI-E argument
// for cycle-accurate emulation. Under TOSSIM-like sequential event
// execution the Figure-2 race cannot even be triggered.
func BenchmarkSequentialSimAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pre, seq, err := experiments.SequentialAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pre), "race_triggers_preemptive")
		b.ReportMetric(float64(seq), "race_triggers_sequential")
	}
}

// BenchmarkNuSensitivity sweeps the SVM's ν on Case II: the busy-drop must
// stay at the head of the ranking across an order of magnitude of ν,
// showing the default is not a tuned constant.
func BenchmarkNuSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NuSensitivity(experiments.CaseIISeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.FirstSymptomRank), "rank_"+metricName(r.Name))
		}
	}
}

// BenchmarkSimulateCaseI measures the record phase alone: the five pooled
// Case-I simulations (D = 20..100 ms, 10 s each) exactly as
// experiments.CaseI launches them, with the mining pipeline excluded. The
// batched/reference sub-benchmarks are the speedup measurement of the fast
// emulation front-end (predecoded dispatch, block batching, loop folding,
// event-horizon scheduling) against the single-step fixed-quantum engine;
// both produce byte-identical traces (TestEngineDifferential).
func BenchmarkSimulateCaseI(b *testing.B) {
	simulate := func(b *testing.B, reference bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			errs := make([]error, len(experiments.CaseIPeriods))
			var wg sync.WaitGroup
			for j, d := range experiments.CaseIPeriods {
				wg.Add(1)
				go func(j, d int) {
					defer wg.Done()
					_, errs[j] = sentomist.RunCaseI(sentomist.CaseIConfig{
						PeriodMS: d, Seconds: 10,
						Seed:      experiments.CaseISeedBase + uint64(j),
						Reference: reference,
					})
				}(j, d)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		simSeconds := 10.0 * float64(len(experiments.CaseIPeriods))
		b.ReportMetric(simSeconds*float64(b.N)/b.Elapsed().Seconds(), "sim_s/host_s")
	}
	b.Run("batched", func(b *testing.B) { simulate(b, false) })
	b.Run("reference", func(b *testing.B) { simulate(b, true) })
}

// BenchmarkSubstrate measures the simulator itself: simulated-vs-host time
// for the heaviest scenario (nine nodes, 15 s of CSMA traffic).
func BenchmarkSubstrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := sentomist.RunCaseIII(sentomist.CaseIIIConfig{Seconds: 15, Seed: 20})
		if err != nil {
			b.Fatal(err)
		}
		markers := 0
		for _, nt := range run.Trace.Nodes {
			markers += len(nt.Markers)
		}
		b.ReportMetric(float64(markers), "markers")
	}
}

// BenchmarkIntervalExtraction measures the Figure-4 algorithm in isolation
// over a pre-generated Case-I trace.
func BenchmarkIntervalExtraction(b *testing.B) {
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: 20, Seconds: 10, Seed: 100})
	if err != nil {
		b.Fatal(err)
	}
	nt := run.Trace.Node(sentomist.CaseISensorID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ivs, err := lifecycle.NewSequence(nt).Extract()
		if err != nil {
			b.Fatal(err)
		}
		if len(ivs) == 0 {
			b.Fatal("no intervals")
		}
	}
}

// BenchmarkOneClassSVM measures detector training+scoring on the pooled
// Case-I feature matrix (~1100 x ~70) through the whole Mine pipeline.
func BenchmarkOneClassSVM(b *testing.B) {
	var inputs []sentomist.RunInput
	for i, d := range []int{20, 40, 60, 80, 100} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
			PeriodMS: d, Seconds: 10, Seed: uint64(experiments.CaseISeedBase + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sentomist.Mine(inputs, sentomist.MineConfig{
			IRQ:   sentomist.IRQADC,
			Nodes: []int{sentomist.CaseISensorID},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// metricName flattens a variant label into a metric-safe suffix.
func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			out = append(out, r)
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case r == ' ' || r == '-':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkScalability measures substrate throughput against fleet size:
// randomized multi-node scenarios (radio traffic, task chains, fuzzing) of
// 2..16 nodes, one simulated second each. ns/op grows roughly linearly
// with active nodes; idle fast-forwarding keeps the constant small.
func BenchmarkScalability(b *testing.B) {
	for _, nodes := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("nodes_%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := synth.Generate(synth.Config{
					Seed:       uint64(i) + 1,
					ExactNodes: nodes,
					Seconds:    1,
				})
				if err != nil {
					b.Fatal(err)
				}
				markers := 0
				for _, nt := range run.Trace.Nodes {
					markers += len(nt.Markers)
				}
				b.ReportMetric(float64(markers), "markers")
			}
		})
	}
}

// caseIPooledInputs simulates the five canonical Case-I runs once, the
// workload BenchmarkMine and BenchmarkSVMTrain mine repeatedly.
func caseIPooledInputs(b *testing.B) []sentomist.RunInput {
	b.Helper()
	var inputs []sentomist.RunInput
	for i, d := range []int{20, 40, 60, 80, 100} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
			PeriodMS: d, Seconds: 10, Seed: uint64(experiments.CaseISeedBase + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}
	return inputs
}

// BenchmarkMine compares the mining engine's configurations on the pooled
// Case-I workload (simulation excluded): the dense sequential baseline
// against the sparse/parallel default. Rankings are identical across all
// variants (see TestMineSparseParallelEquivalence); only the cost differs.
func BenchmarkMine(b *testing.B) {
	inputs := caseIPooledInputs(b)
	variants := []struct {
		name string
		cfg  sentomist.MineConfig
	}{
		{"dense_sequential", sentomist.MineConfig{
			DenseFeatures: true, Parallelism: 1,
			Detector: outlier.OneClassSVM{Parallelism: 1},
		}},
		{"dense_parallel", sentomist.MineConfig{
			DenseFeatures: true,
			Detector:      outlier.OneClassSVM{},
		}},
		{"sparse_sequential", sentomist.MineConfig{
			Parallelism: 1,
			Detector:    outlier.OneClassSVM{Parallelism: 1},
		}},
		{"sparse_parallel", sentomist.MineConfig{}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg
			cfg.IRQ = sentomist.IRQADC
			cfg.Nodes = []int{sentomist.CaseISensorID}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := sentomist.Mine(inputs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Samples) == 0 {
					b.Fatal("empty ranking")
				}
			}
		})
	}
}

// pooledCounters extracts the scaled Case-I feature matrix in both
// representations.
func pooledCounters(b *testing.B, inputs []sentomist.RunInput) ([][]float64, []stats.Sparse) {
	b.Helper()
	var dense [][]float64
	var sparse []stats.Sparse
	for _, in := range inputs {
		ext := feature.NewExtractor(in.Trace)
		nt := in.Trace.Node(sentomist.CaseISensorID)
		ivs, err := lifecycle.NewSequence(nt).Extract()
		if err != nil {
			b.Fatal(err)
		}
		for _, iv := range ivs {
			if iv.IRQ != sentomist.IRQADC || !iv.Complete {
				continue
			}
			dv, err := ext.Counter(iv)
			if err != nil {
				b.Fatal(err)
			}
			sv, err := ext.CounterSparse(iv)
			if err != nil {
				b.Fatal(err)
			}
			dense = append(dense, dv)
			sparse = append(sparse, sv)
		}
	}
	feature.Scale01(dense)
	feature.Scale01Sparse(sparse)
	return dense, sparse
}

// BenchmarkSVMTrain isolates detector training on the pooled Case-I
// feature matrix: dense vs sparse kernel evaluation, sequential vs
// parallel Gram construction. Training includes the Gram-reuse scoring of
// every training row (Model.TrainingDecisions).
func BenchmarkSVMTrain(b *testing.B) {
	dense, sparse := pooledCounters(b, caseIPooledInputs(b))
	cfg := svm.Config{Nu: 0.05}
	b.Logf("l=%d dim=%d mean_nnz=%.1f", len(dense), len(dense[0]), meanNNZ(sparse))
	b.Run("dense_sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Parallelism = 1
			if _, err := svm.Train(dense, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svm.Train(dense, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse_sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Parallelism = 1
			if _, err := svm.TrainSparse(sparse, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse_parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := svm.TrainSparse(sparse, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func meanNNZ(samples []stats.Sparse) float64 {
	var total int
	for _, s := range samples {
		total += s.NNZ()
	}
	return float64(total) / float64(len(samples))
}

// BenchmarkCounterSparse compares feature extraction over every complete
// ADC interval of a Case-I run: the dense path materializes a
// ProgramLen-dimensional vector per interval, the sparse path only its
// executed (pc, count) pairs.
func BenchmarkCounterSparse(b *testing.B) {
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: 20, Seconds: 10, Seed: 100})
	if err != nil {
		b.Fatal(err)
	}
	nt := run.Trace.Node(sentomist.CaseISensorID)
	all, err := lifecycle.NewSequence(nt).Extract()
	if err != nil {
		b.Fatal(err)
	}
	var ivs []lifecycle.Interval
	for _, iv := range all {
		if iv.IRQ == sentomist.IRQADC && iv.Complete {
			ivs = append(ivs, iv)
		}
	}
	ext := feature.NewExtractor(run.Trace)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, iv := range ivs {
				if _, err := ext.Counter(iv); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, iv := range ivs {
				if _, err := ext.CounterSparse(iv); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPipelineCaseI measures the end-to-end pipeline — simulate,
// anatomize, feature, detect, rank — over the five canonical Case-I runs,
// comparing the materialized two-pass path against the streaming campaign
// engine (online anatomize + feature during emulation, markers never
// materialized, recorder/counter scratch pooled across runs).
//
//	materialized         record full traces, then Mine
//	materialized_pooled  as above, recycling trace storage between rounds
//	streaming            campaign engine, DiscardMarkers, pooled scratch
func BenchmarkPipelineCaseI(b *testing.B) {
	mineMaterialized := func(release bool) (*sentomist.Ranking, error) {
		runs := make([]*sentomist.Run, len(experiments.CaseIPeriods))
		errs := make([]error, len(experiments.CaseIPeriods))
		var wg sync.WaitGroup
		for j, d := range experiments.CaseIPeriods {
			wg.Add(1)
			go func(j, d int) {
				defer wg.Done()
				runs[j], errs[j] = sentomist.RunCaseI(sentomist.CaseIConfig{
					PeriodMS: d, Seconds: 10,
					Seed: experiments.CaseISeedBase + uint64(j),
				})
			}(j, d)
		}
		wg.Wait()
		inputs := make([]sentomist.RunInput, len(runs))
		for j, run := range runs {
			if errs[j] != nil {
				return nil, errs[j]
			}
			inputs[j] = sentomist.RunInput{Trace: run.Trace, Programs: run.Programs}
		}
		ranking, err := sentomist.Mine(inputs, sentomist.MineConfig{
			IRQ: sentomist.IRQADC, Nodes: []int{sentomist.CaseISensorID},
		})
		if release {
			for _, run := range runs {
				run.Release()
			}
		}
		return ranking, err
	}
	runsPerSec := func(b *testing.B) {
		b.Helper()
		b.ReportMetric(float64(len(experiments.CaseIPeriods))*float64(b.N)/b.Elapsed().Seconds(), "runs/s")
	}
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mineMaterialized(false); err != nil {
				b.Fatal(err)
			}
		}
		runsPerSec(b)
	})
	b.Run("materialized_pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mineMaterialized(true); err != nil {
				b.Fatal(err)
			}
		}
		runsPerSec(b)
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.CaseICampaign(experiments.CaseISeedBase); err != nil {
				b.Fatal(err)
			}
		}
		runsPerSec(b)
	})
}
