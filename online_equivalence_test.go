package sentomist_test

// Online incremental mining claims exact finality: whatever the refit
// cadence, spill mode, or upstream worker count, OnlineMiner.Finalize must
// reproduce the one-shot MineBatches ranking bit for bit. These tests pin
// that on the three paper case studies, on the deterministic multihop
// scenario, and on the campaign engine's streaming-ingest arm.

import (
	"testing"

	"sentomist"
	"sentomist/internal/synth"
	"sentomist/internal/trace"
)

// mineOnline streams freshly extracted batches through an online miner and
// finalizes. A zero refitEvery exercises the ingest-only path (no
// intermediate refits at all).
func mineOnline(t *testing.T, inputs []sentomist.RunInput, cfg sentomist.MineConfig, refitEvery int, spillDir string) (*sentomist.Ranking, int) {
	t.Helper()
	batches, err := sentomist.ExtractBatches(inputs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refits := 0
	miner, err := sentomist.NewOnlineMiner(sentomist.OnlineMineConfig{
		Config:     cfg,
		RefitEvery: refitEvery,
		TopK:       5,
		SpillDir:   spillDir,
		SpillBlock: 64,
		OnRanking:  func(*sentomist.OnlineRanking) { refits++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := miner.Add(b); err != nil {
			miner.Close()
			t.Fatal(err)
		}
	}
	ranking, err := miner.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return ranking, refits
}

// TestOnlineMatchesOneShotCaseStudies pins the finality claim on all three
// case studies, across refit cadences and both spill stores. MineBatches
// scales counters in place, so every mining pass extracts its own batches.
func TestOnlineMatchesOneShotCaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	for name, fx := range caseFixtures(t) {
		t.Run(name, func(t *testing.T) {
			oneShot, err := sentomist.ExtractBatches(fx.inputs, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sentomist.MineBatches(oneShot, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			refitsSeen := false
			for _, cadence := range []int{0, 1, 3} {
				for _, spill := range []string{"", t.TempDir()} {
					got, refits := mineOnline(t, fx.inputs, fx.cfg, cadence, spill)
					label := name + "/online"
					if spill != "" {
						label += "+spill"
					}
					sameRankingExact(t, label, want, got)
					if cadence > 0 && refits > 0 {
						refitsSeen = true
					}
				}
			}
			if !refitsSeen {
				t.Error("no intermediate refits fired at any cadence")
			}
		})
	}
}

// TestOnlineMatchesOneShotMultihop pins the finality claim on the
// deterministic multihop chain — radio-driven intervals, incomplete
// intervals excluded — mined per forwarding node.
func TestOnlineMatchesOneShotMultihop(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	run, err := synth.Multihop(synth.MultihopConfig{Nodes: 6, Seconds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}}
	// Each chain node runs its own program (distinct dims), so mine one
	// node at a time.
	for _, nodeID := range []int{0, 2} {
		cfg := sentomist.MineConfig{IRQ: sentomist.IRQTimer0, Nodes: []int{nodeID}}
		oneShot, err := sentomist.ExtractBatches(inputs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sentomist.MineBatches(oneShot, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, cadence := range []int{1, 2} {
			got, _ := mineOnline(t, inputs, cfg, cadence, "")
			sameRankingExact(t, "multihop/online", want, got)
		}
	}
}

// TestOnlineMultiIRQMatchesOneShot pins multi-IRQ finality on the multihop
// chain: the forwarding node's timer and radio-receive intervals are mined
// together over one shared spill, and FinalizeAll's per-type rankings must
// each match one-shot MineBatches with that type as the config IRQ.
func TestOnlineMultiIRQMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	run, err := synth.Multihop(synth.MultihopConfig{Nodes: 6, Seconds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}}
	irqs := []int{sentomist.IRQTimer0, sentomist.IRQRadioRX}
	want := map[int]*sentomist.Ranking{}
	for _, irq := range irqs {
		cfg := sentomist.MineConfig{IRQ: irq, Nodes: []int{2}}
		oneShot, err := sentomist.ExtractBatches(inputs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want[irq], err = sentomist.MineBatches(oneShot, cfg); err != nil {
			t.Fatal(err)
		}
	}
	cfg := sentomist.MineConfig{IRQ: sentomist.IRQTimer0, Nodes: []int{2}}
	batches, err := sentomist.ExtractBatchesFor(inputs, cfg, irqs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, spill := range []string{"", t.TempDir()} {
		miner, err := sentomist.NewOnlineMiner(sentomist.OnlineMineConfig{
			Config:     cfg,
			IRQs:       []int{sentomist.IRQRadioRX},
			RefitEvery: 2,
			TopK:       5,
			SpillDir:   spill,
			SpillBlock: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			if err := miner.Add(b); err != nil {
				miner.Close()
				t.Fatal(err)
			}
		}
		all, err := miner.FinalizeAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != len(irqs) {
			t.Fatalf("FinalizeAll returned %d rankings, want %d", len(all), len(irqs))
		}
		for _, irq := range irqs {
			sameRankingExact(t, "multihop/multi-irq", want[irq], all[irq])
		}
	}
}

// TestOnlineCampaignMatchesMine pins the campaign engine's streaming-ingest
// arm: runs finish on a worker pool in nondeterministic order, are ingested
// strictly in run order, and the finalized ranking still matches the
// materialized pipeline at every worker count — with tiny-block compaction
// and the full-replay baseline exercised along the way.
func TestOnlineCampaignMatchesMine(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	var inputs []sentomist.RunInput
	for i, d := range []int{20, 40, 60} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: d, Seconds: 5, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}
	want, err := sentomist.Mine(inputs, sentomist.MineConfig{
		IRQ: sentomist.IRQADC, Nodes: []int{sentomist.CaseISensorID},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []struct {
		workers      int
		spillCompact int
		fullReplay   bool
	}{
		{workers: 1},
		{workers: 4, spillCompact: 2}, // tiny blocks merge every refit
		{workers: 0, fullReplay: true},
	} {
		got, err := campaignCaseIOnline(v.workers, t.TempDir(), v.spillCompact, v.fullReplay)
		if err != nil {
			t.Fatal(err)
		}
		sameRankingExact(t, "campaign-online", want, got)
	}
}

// campaignCaseIOnline is streaming_test.go's reduced Case-I campaign with
// the online arm enabled: refit every batch, top-5, columnar disk spill.
func campaignCaseIOnline(workers int, spillDir string, spillCompact int, fullReplay bool) (*sentomist.Ranking, error) {
	periods := []int{20, 40, 60}
	runs := make([]sentomist.CampaignRun, len(periods))
	for i, d := range periods {
		i, d := i, d
		runs[i] = func(attach sentomist.CampaignAttach) error {
			run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
				PeriodMS: d, Seconds: 5, Seed: uint64(100 + i),
				Stream: map[int]trace.StreamSink{
					sentomist.CaseISensorID: attach(sentomist.CaseISensorID),
				},
				DiscardMarkers: true,
			})
			if err != nil {
				return err
			}
			run.Release()
			return nil
		}
	}
	return sentomist.MineCampaign(sentomist.CampaignConfig{
		IRQ:     sentomist.IRQADC,
		Nodes:   []int{sentomist.CaseISensorID},
		Workers: workers,
		Online: &sentomist.CampaignOnline{
			RefitEvery:   1,
			TopK:         5,
			SpillDir:     spillDir,
			SpillBlock:   16,
			SpillCompact: spillCompact,
			FullReplay:   fullReplay,
		},
	}, runs)
}
