package sentomist_test

// The sparse/parallel mining engine claims more than a tolerance: the
// default pipeline (sparse instruction counters, concurrent anatomize +
// feature workers, parallel Gram construction, Gram-reuse scoring) must
// produce rankings identical to the dense, fully sequential baseline.
// These tests pin that equivalence on the three paper case studies.

import (
	"testing"

	"sentomist"
	"sentomist/internal/outlier"
)

// caseFixtures returns one Mine workload per paper case study, sized for
// test time rather than paper fidelity (the golden tests pin the canonical
// full-length rankings).
func caseFixtures(t *testing.T) map[string]struct {
	inputs []sentomist.RunInput
	cfg    sentomist.MineConfig
} {
	t.Helper()
	fixtures := make(map[string]struct {
		inputs []sentomist.RunInput
		cfg    sentomist.MineConfig
	})

	var caseI []sentomist.RunInput
	for i, d := range []int{20, 40, 60} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: d, Seconds: 5, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		caseI = append(caseI, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}
	fixtures["caseI"] = struct {
		inputs []sentomist.RunInput
		cfg    sentomist.MineConfig
	}{caseI, sentomist.MineConfig{IRQ: sentomist.IRQADC, Nodes: []int{sentomist.CaseISensorID}}}

	runII, err := sentomist.RunCaseII(sentomist.CaseIIConfig{Seconds: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	fixtures["caseII"] = struct {
		inputs []sentomist.RunInput
		cfg    sentomist.MineConfig
	}{
		[]sentomist.RunInput{{Trace: runII.Trace, Programs: runII.Programs}},
		sentomist.MineConfig{IRQ: sentomist.IRQRadioRX, Nodes: []int{sentomist.CaseIIRelayID}, Labels: sentomist.LabelSeqOnly},
	}

	runIII, err := sentomist.RunCaseIII(sentomist.CaseIIIConfig{Seconds: 8, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	fixtures["caseIII"] = struct {
		inputs []sentomist.RunInput
		cfg    sentomist.MineConfig
	}{
		[]sentomist.RunInput{{Trace: runIII.Trace, Programs: runIII.Programs}},
		sentomist.MineConfig{IRQ: sentomist.IRQTimer0, Nodes: sentomist.CaseIIISources(), Labels: sentomist.LabelNodeSeq},
	}
	return fixtures
}

func sameRanking(t *testing.T, label string, want, got *sentomist.Ranking) {
	t.Helper()
	if len(want.Samples) != len(got.Samples) {
		t.Fatalf("%s: %d samples vs %d", label, len(want.Samples), len(got.Samples))
	}
	if want.Dim != got.Dim || want.Excluded != got.Excluded {
		t.Fatalf("%s: dim/excluded drifted: (%d,%d) vs (%d,%d)",
			label, want.Dim, want.Excluded, got.Dim, got.Excluded)
	}
	for i := range want.Samples {
		w, g := want.Samples[i], got.Samples[i]
		if w.Run != g.Run || w.Interval != g.Interval {
			t.Fatalf("%s: rank %d order differs: %+v vs %+v", label, i+1, w.Interval, g.Interval)
		}
		diff := w.Score - g.Score
		if diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("%s: rank %d score %v vs %v", label, i+1, w.Score, g.Score)
		}
		if w.Score != g.Score {
			t.Logf("%s: rank %d score differs within tolerance: %v vs %v", label, i+1, w.Score, g.Score)
		}
	}
}

// TestMineSparseParallelEquivalence checks every engine configuration
// against the dense sequential baseline on all three case fixtures.
func TestMineSparseParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	for name, fx := range caseFixtures(t) {
		t.Run(name, func(t *testing.T) {
			baseCfg := fx.cfg
			baseCfg.DenseFeatures = true
			baseCfg.Parallelism = 1
			baseCfg.Detector = outlier.OneClassSVM{Parallelism: 1}
			want, err := sentomist.Mine(fx.inputs, baseCfg)
			if err != nil {
				t.Fatal(err)
			}
			variants := map[string]sentomist.MineConfig{
				"sparse-seq":   {Parallelism: 1},
				"dense-par":    {DenseFeatures: true, Parallelism: 8},
				"sparse-par":   {Parallelism: 8},
				"sparse-auto":  {},
				"gram-par":     {Parallelism: 1, Detector: outlier.OneClassSVM{Parallelism: 8}},
				"all-parallel": {Parallelism: 8, Detector: outlier.OneClassSVM{Parallelism: 8}},
			}
			for vname, v := range variants {
				cfg := fx.cfg
				cfg.DenseFeatures = v.DenseFeatures
				cfg.Parallelism = v.Parallelism
				cfg.Detector = v.Detector
				got, err := sentomist.Mine(fx.inputs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameRanking(t, name+"/"+vname, want, got)
			}
		})
	}
}

// sameRankingExact is sameRanking with zero tolerance: every rank and
// every score must match bit-for-bit.
func sameRankingExact(t *testing.T, label string, want, got *sentomist.Ranking) {
	t.Helper()
	if len(want.Samples) != len(got.Samples) {
		t.Fatalf("%s: %d samples vs %d", label, len(want.Samples), len(got.Samples))
	}
	for i := range want.Samples {
		w, g := want.Samples[i], got.Samples[i]
		if w != g {
			t.Fatalf("%s: rank %d differs: %+v (score %v) vs %+v (score %v)",
				label, i+1, w.Interval, w.Score, g.Interval, g.Score)
		}
	}
}

// TestMineCachedKernelEquivalence pins the on-demand kernel cache's
// central claim on the three case studies: mining through the bounded
// column cache — at budgets from effectively unbounded down to 5% of the
// dense Gram footprint — reproduces the default pipeline's ranking
// bit-for-bit, and the shrinking heuristic reproduces it to the solver
// tolerance (the golden Figure 5 tables stay byte-stable either way).
func TestMineCachedKernelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	for name, fx := range caseFixtures(t) {
		t.Run(name, func(t *testing.T) {
			want, err := sentomist.Mine(fx.inputs, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			gram := int64(8) * int64(len(want.Samples)) * int64(len(want.Samples))
			budgets := map[string]int64{
				"unbounded": 1 << 40,
				"25pct":     gram / 4,
				"5pct":      gram / 20,
			}
			for bname, budget := range budgets {
				cfg := fx.cfg
				cfg.SVMCacheBytes = budget
				got, err := sentomist.Mine(fx.inputs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				sameRankingExact(t, name+"/cached-"+bname, want, got)
			}
			// Shrinking changes float summation order, so compare the
			// published ranking order and scores to the solver tolerance.
			cfg := fx.cfg
			cfg.SVMCacheBytes = gram / 4
			cfg.SVMShrinking = true
			shrunk, err := sentomist.Mine(fx.inputs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(shrunk.Samples) != len(want.Samples) {
				t.Fatalf("shrink: %d samples vs %d", len(shrunk.Samples), len(want.Samples))
			}
			for i := range want.Samples {
				w, g := want.Samples[i], shrunk.Samples[i]
				if w.Run != g.Run || w.Interval != g.Interval {
					t.Fatalf("shrink: rank %d order differs: %+v vs %+v", i+1, w.Interval, g.Interval)
				}
				diff := w.Score - g.Score
				if diff < -1e-3 || diff > 1e-3 {
					t.Fatalf("shrink: rank %d score %v vs %v", i+1, w.Score, g.Score)
				}
			}
		})
	}
}

// TestMineParallelRace drives the worker pools hard enough for the race
// detector to observe them (go test -race exercises this deliberately):
// repeated concurrent mining of the same immutable inputs.
func TestMineParallelRace(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: 20, Seconds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sentomist.MineConfig{
		IRQ:         sentomist.IRQADC,
		Nodes:       []int{sentomist.CaseISensorID},
		Parallelism: 8,
		Detector:    outlier.OneClassSVM{Parallelism: 8},
	}
	var first *sentomist.Ranking
	for i := 0; i < 3; i++ {
		// Feature extraction mutates nothing in the trace, so the same
		// inputs can be mined repeatedly.
		r, err := sentomist.Mine([]sentomist.RunInput{{Trace: run.Trace, Programs: run.Programs}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = r
		} else {
			sameRanking(t, "repeat", first, r)
		}
	}
}
