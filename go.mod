module sentomist

go 1.22
