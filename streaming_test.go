package sentomist_test

// The streaming pipeline claims exact equivalence, not approximation: an
// online anatomizer fed markers during emulation must produce the same
// intervals, bit-identical counters, and the same ranking as the two-pass
// materialized pipeline. These tests pin that on all three paper case
// studies and on the pooled campaign engine.

import (
	"reflect"
	"testing"

	"sentomist"
	"sentomist/internal/apps"
	"sentomist/internal/feature"
	"sentomist/internal/lifecycle"
	"sentomist/internal/stats"
	"sentomist/internal/trace"
)

// streamedCase is one case study run with live streamers attached and the
// materialized trace still recorded, so both pipelines see the same run.
type streamedCase struct {
	run       *sentomist.Run
	nodes     []int // monitored nodes, in trace order
	streamers []*lifecycle.Streamer
	cfg       sentomist.MineConfig
}

func streamedFixtures(t *testing.T) map[string]*streamedCase {
	t.Helper()
	pool := &lifecycle.ScratchPool{}
	attach := func(nodes []int) (map[int]trace.StreamSink, []*lifecycle.Streamer) {
		sinks := make(map[int]trace.StreamSink, len(nodes))
		streamers := make([]*lifecycle.Streamer, len(nodes))
		for i, id := range nodes {
			streamers[i] = lifecycle.NewStreamer(id, pool)
			sinks[id] = streamers[i]
		}
		return sinks, streamers
	}
	out := make(map[string]*streamedCase)

	nodesI := []int{sentomist.CaseISensorID}
	sinksI, strI := attach(nodesI)
	runI, err := sentomist.RunCaseI(sentomist.CaseIConfig{
		PeriodMS: 20, Seconds: 5, Seed: 100, Stream: sinksI,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["caseI"] = &streamedCase{
		run: runI, nodes: nodesI, streamers: strI,
		cfg: sentomist.MineConfig{IRQ: sentomist.IRQADC, Nodes: nodesI},
	}

	nodesII := []int{sentomist.CaseIIRelayID}
	sinksII, strII := attach(nodesII)
	runII, err := sentomist.RunCaseII(sentomist.CaseIIConfig{
		Seconds: 8, Seed: 7, Stream: sinksII,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["caseII"] = &streamedCase{
		run: runII, nodes: nodesII, streamers: strII,
		cfg: sentomist.MineConfig{IRQ: sentomist.IRQRadioRX, Nodes: nodesII, Labels: sentomist.LabelSeqOnly},
	}

	nodesIII := sentomist.CaseIIISources()
	sinksIII, strIII := attach(nodesIII)
	runIII, err := sentomist.RunCaseIII(sentomist.CaseIIIConfig{
		Seconds: 8, Seed: 20, Stream: sinksIII,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["caseIII"] = &streamedCase{
		run: runIII, nodes: nodesIII, streamers: strIII,
		cfg: sentomist.MineConfig{IRQ: sentomist.IRQTimer0, Nodes: nodesIII, Labels: sentomist.LabelNodeSeq},
	}
	return out
}

// TestStreamingMatchesMaterialized checks, per monitored node of every case
// study, that the live streamer's intervals and counters are bit-identical
// to the materialized reference, and that ranking the streamed batches
// reproduces Mine's ranking exactly.
func TestStreamingMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	for name, fx := range streamedFixtures(t) {
		t.Run(name, func(t *testing.T) {
			ext := feature.NewExtractor(fx.run.Trace)
			var batches []sentomist.MineBatch
			for i, id := range fx.nodes {
				nt := fx.run.Trace.Node(id)
				wantIvs, err := lifecycle.NewSequence(nt).Extract()
				if err != nil {
					t.Fatal(err)
				}
				gotIvs, gotCnt, err := fx.streamers[i].Finalize()
				if err != nil {
					t.Fatalf("node %d: %v", id, err)
				}
				if len(gotIvs) != len(wantIvs) {
					t.Fatalf("node %d: %d streamed intervals, want %d", id, len(gotIvs), len(wantIvs))
				}
				for k := range wantIvs {
					if !reflect.DeepEqual(gotIvs[k], wantIvs[k]) {
						t.Fatalf("node %d interval %d:\n got: %+v\nwant: %+v", id, k, gotIvs[k], wantIvs[k])
					}
					wantC, err := ext.CounterSparse(wantIvs[k])
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotCnt[k], wantC) {
						t.Fatalf("node %d interval %d: counter diverges", id, k)
					}
				}
				batches = append(batches, sentomist.MineBatch{
					Run: 1, Intervals: gotIvs, Counters: copySparse(gotCnt),
				})
			}
			want, err := sentomist.Mine(
				[]sentomist.RunInput{{Trace: fx.run.Trace, Programs: fx.run.Programs}}, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sentomist.MineBatches(batches, fx.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, name+"/streamed", want, got)
		})
	}
}

// copySparse deep-copies counters: scoring scales vectors in place, and the
// originals here are also compared against the materialized reference.
func copySparse(in []stats.Sparse) []stats.Sparse {
	out := make([]stats.Sparse, len(in))
	for i, v := range in {
		out[i] = stats.Sparse{
			Idx: append([]int32(nil), v.Idx...),
			Val: append([]float64(nil), v.Val...),
			Dim: v.Dim,
		}
	}
	return out
}

// campaignCaseI runs a reduced Case-I campaign (three runs, five seconds)
// through the streaming engine with markers discarded.
func campaignCaseI(workers int) (*sentomist.Ranking, error) {
	periods := []int{20, 40, 60}
	runs := make([]sentomist.CampaignRun, len(periods))
	for i, d := range periods {
		i, d := i, d
		runs[i] = func(attach sentomist.CampaignAttach) error {
			run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
				PeriodMS: d, Seconds: 5, Seed: uint64(100 + i),
				Stream: map[int]trace.StreamSink{
					sentomist.CaseISensorID: attach(sentomist.CaseISensorID),
				},
				DiscardMarkers: true,
			})
			if err != nil {
				return err
			}
			run.Release()
			return nil
		}
	}
	return sentomist.MineCampaign(sentomist.CampaignConfig{
		IRQ:     sentomist.IRQADC,
		Nodes:   []int{sentomist.CaseISensorID},
		Workers: workers,
	}, runs)
}

// TestCampaignMatchesMine pins the pooled campaign engine — streaming
// anatomization, discarded markers, recycled scratch — against the
// materialized multi-run pipeline, at several worker counts.
func TestCampaignMatchesMine(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulations")
	}
	var inputs []sentomist.RunInput
	for i, d := range []int{20, 40, 60} {
		run, err := sentomist.RunCaseI(sentomist.CaseIConfig{PeriodMS: d, Seconds: 5, Seed: uint64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, sentomist.RunInput{Trace: run.Trace, Programs: run.Programs})
	}
	want, err := sentomist.Mine(inputs, sentomist.MineConfig{
		IRQ: sentomist.IRQADC, Nodes: []int{sentomist.CaseISensorID},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := campaignCaseI(workers)
		if err != nil {
			t.Fatal(err)
		}
		sameRanking(t, "campaign", want, got)
	}
}

// TestDiscardedTraceIsEmpty pins the memory contract of discard mode: no
// markers are materialized, yet the streamed ranking above proves the full
// pipeline still ran.
func TestDiscardedTraceIsEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation")
	}
	s := sentomist.NewStreamer(apps.OscSensorID, nil)
	run, err := sentomist.RunCaseI(sentomist.CaseIConfig{
		PeriodMS: 20, Seconds: 2, Seed: 1,
		Stream:         map[int]trace.StreamSink{apps.OscSensorID: s},
		DiscardMarkers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, nt := range run.Trace.Nodes {
		if len(nt.Markers) != 0 {
			t.Fatalf("node %d materialized %d markers in discard mode", nt.NodeID, len(nt.Markers))
		}
	}
	ivs, _, err := s.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) == 0 {
		t.Fatal("streamer saw no intervals in discard mode")
	}
}
